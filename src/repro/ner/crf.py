"""Linear-chain conditional random field trained with L-BFGS.

This is the reproduction of the Stanford NER classifier used throughout the
paper: a discriminative sequence model with local lexical features, first
order label transitions, dedicated start/stop scores and L2 regularisation,
optimised by a quasi-Newton method.

The implementation keeps the design simple and NumPy-friendly:

* features are strings produced by a feature extractor and mapped to dense
  indices by a :class:`~repro.text.vocab.Vocabulary`;
* per-token emission scores are computed by summing rows of the emission
  weight matrix for the active features;
* the forward-backward recursions run in log space, vectorised over labels;
* the objective/gradient pair is handed to ``scipy.optimize.minimize``
  (L-BFGS-B).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import minimize
from scipy.special import logsumexp

from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.text.vocab import Vocabulary
from repro.utils import require_equal_lengths, require_nonempty

__all__ = ["LinearChainCRF"]


class LinearChainCRF:
    """First-order linear-chain CRF over string features.

    Args:
        l2: L2 regularisation strength (Gaussian prior precision).
        max_iterations: Cap on L-BFGS iterations.
        min_feature_count: Features observed fewer times than this in the
            training data are dropped, which keeps the parameter count small
            and mirrors Stanford NER's feature-count cut-off.
        tolerance: L-BFGS convergence tolerance on the objective.
    """

    def __init__(
        self,
        *,
        l2: float = 1.0,
        max_iterations: int = 120,
        min_feature_count: int = 1,
        tolerance: float = 1e-5,
    ) -> None:
        if l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {l2}")
        if max_iterations <= 0:
            raise ConfigurationError(f"max_iterations must be positive, got {max_iterations}")
        if min_feature_count < 1:
            raise ConfigurationError(f"min_feature_count must be >= 1, got {min_feature_count}")
        self.l2 = float(l2)
        self.max_iterations = int(max_iterations)
        self.min_feature_count = int(min_feature_count)
        self.tolerance = float(tolerance)

        self.feature_vocab: Vocabulary | None = None
        self.label_vocab: Vocabulary | None = None
        self.emission_weights: np.ndarray | None = None  # (n_features, n_labels)
        self.transition_weights: np.ndarray | None = None  # (n_labels, n_labels)
        self.start_weights: np.ndarray | None = None  # (n_labels,)
        self.end_weights: np.ndarray | None = None  # (n_labels,)
        self.training_history: list[float] = []

    # ------------------------------------------------------------------ API

    @property
    def is_trained(self) -> bool:
        """Whether the model holds fitted weights."""
        return self.emission_weights is not None

    def fit(
        self,
        feature_sequences: Sequence[Sequence[Sequence[str]]],
        label_sequences: Sequence[Sequence[str]],
    ) -> "LinearChainCRF":
        """Train on parallel feature/label sequences.

        Args:
            feature_sequences: One list of feature-string lists per sentence.
            label_sequences: One list of label strings per sentence.
        """
        require_nonempty("feature_sequences", feature_sequences)
        require_equal_lengths(
            "feature_sequences", feature_sequences, "label_sequences", label_sequences
        )
        self._build_vocabularies(feature_sequences, label_sequences)
        encoded = self._encode_dataset(feature_sequences, label_sequences)
        n_features = len(self.feature_vocab)
        n_labels = len(self.label_vocab)
        n_params = n_features * n_labels + n_labels * n_labels + 2 * n_labels
        initial = np.zeros(n_params, dtype=np.float64)
        self.training_history = []

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            value, gradient = self._objective(params, encoded, n_features, n_labels)
            self.training_history.append(float(value))
            return value, gradient

        result = minimize(
            objective,
            initial,
            method="L-BFGS-B",
            jac=True,
            tol=self.tolerance,
            options={"maxiter": self.max_iterations},
        )
        self._unpack(result.x, n_features, n_labels)
        return self

    def predict(self, feature_sequence: Sequence[Sequence[str]]) -> list[str]:
        """Most likely label sequence (Viterbi decode) for one sentence."""
        if not self.is_trained:
            raise NotFittedError("LinearChainCRF.predict called before fit()")
        if len(feature_sequence) == 0:
            return []
        emissions = self._emission_scores(feature_sequence)
        path = self._viterbi(emissions)
        return [self.label_vocab.symbol(index) for index in path]

    def predict_batch(
        self, feature_sequences: Sequence[Sequence[Sequence[str]]]
    ) -> list[list[str]]:
        """Viterbi decode for many sentences."""
        return [self.predict(sequence) for sequence in feature_sequences]

    def sequence_log_likelihood(
        self, feature_sequence: Sequence[Sequence[str]], labels: Sequence[str]
    ) -> float:
        """Log P(labels | features) under the fitted model."""
        if not self.is_trained:
            raise NotFittedError("model must be fitted first")
        require_equal_lengths("feature_sequence", feature_sequence, "labels", labels)
        if len(labels) == 0:
            raise DataError("cannot score an empty sequence")
        emissions = self._emission_scores(feature_sequence)
        label_indices = [self.label_vocab.index(label) for label in labels]
        score = self.start_weights[label_indices[0]] + emissions[0, label_indices[0]]
        for t in range(1, len(label_indices)):
            score += self.transition_weights[label_indices[t - 1], label_indices[t]]
            score += emissions[t, label_indices[t]]
        score += self.end_weights[label_indices[-1]]
        log_z = self._log_partition(emissions)
        return float(score - log_z)

    def marginals(self, feature_sequence: Sequence[Sequence[str]]) -> np.ndarray:
        """Per-token posterior marginals, shape ``(len(sequence), n_labels)``."""
        if not self.is_trained:
            raise NotFittedError("model must be fitted first")
        emissions = self._emission_scores(feature_sequence)
        alpha = self._forward(emissions)
        beta = self._backward(emissions)
        log_z = logsumexp(alpha[-1] + self.end_weights)
        return np.exp(alpha + beta - log_z)

    def labels(self) -> list[str]:
        """Label inventory learnt during training."""
        if self.label_vocab is None:
            raise NotFittedError("model must be fitted first")
        return self.label_vocab.symbols()

    # --------------------------------------------------------------- fitting

    def _build_vocabularies(
        self,
        feature_sequences: Sequence[Sequence[Sequence[str]]],
        label_sequences: Sequence[Sequence[str]],
    ) -> None:
        counts: dict[str, int] = {}
        for sentence in feature_sequences:
            for token_features in sentence:
                for feature in token_features:
                    counts[feature] = counts.get(feature, 0) + 1
        kept = [f for f, count in counts.items() if count >= self.min_feature_count]
        self.feature_vocab = Vocabulary(sorted(kept)).freeze()
        labels = sorted({label for sentence in label_sequences for label in sentence})
        if not labels:
            raise DataError("no labels found in the training data")
        self.label_vocab = Vocabulary(labels).freeze()

    def _encode_dataset(
        self,
        feature_sequences: Sequence[Sequence[Sequence[str]]],
        label_sequences: Sequence[Sequence[str]],
    ) -> list[tuple[list[np.ndarray], np.ndarray]]:
        encoded: list[tuple[list[np.ndarray], np.ndarray]] = []
        for sentence, labels in zip(feature_sequences, label_sequences):
            require_equal_lengths("sentence", sentence, "labels", labels)
            if len(sentence) == 0:
                continue
            token_feature_indices = [
                np.array(
                    sorted(
                        {
                            index
                            for feature in token_features
                            if (index := self.feature_vocab.get(feature)) is not None
                        }
                    ),
                    dtype=np.int64,
                )
                for token_features in sentence
            ]
            label_indices = np.array(
                [self.label_vocab.index(label) for label in labels], dtype=np.int64
            )
            encoded.append((token_feature_indices, label_indices))
        if not encoded:
            raise DataError("all training sequences were empty")
        return encoded

    def _objective(
        self,
        params: np.ndarray,
        encoded: list[tuple[list[np.ndarray], np.ndarray]],
        n_features: int,
        n_labels: int,
    ) -> tuple[float, np.ndarray]:
        emission, transition, start, end = self._split(params, n_features, n_labels)
        grad_emission = np.zeros_like(emission)
        grad_transition = np.zeros_like(transition)
        grad_start = np.zeros_like(start)
        grad_end = np.zeros_like(end)
        negative_log_likelihood = 0.0

        for token_feature_indices, label_indices in encoded:
            length = len(token_feature_indices)
            emissions = np.zeros((length, n_labels), dtype=np.float64)
            for t, indices in enumerate(token_feature_indices):
                if indices.size:
                    emissions[t] = emission[indices].sum(axis=0)

            alpha = self._forward_scores(emissions, transition, start)
            beta = self._backward_scores(emissions, transition, end)
            log_z = logsumexp(alpha[-1] + end)

            # Gold path score.
            gold = start[label_indices[0]] + emissions[0, label_indices[0]]
            for t in range(1, length):
                gold += transition[label_indices[t - 1], label_indices[t]]
                gold += emissions[t, label_indices[t]]
            gold += end[label_indices[-1]]
            negative_log_likelihood += log_z - gold

            # Posterior marginals.
            gamma = np.exp(alpha + beta - log_z)  # (length, n_labels)

            # Emission gradient: expected minus empirical counts.
            for t, indices in enumerate(token_feature_indices):
                if indices.size:
                    grad_emission[indices] += gamma[t]
                    grad_emission[indices, label_indices[t]] -= 1.0

            # Start / end gradients.
            grad_start += gamma[0]
            grad_start[label_indices[0]] -= 1.0
            grad_end += gamma[-1]
            grad_end[label_indices[-1]] -= 1.0

            # Transition gradient via pairwise marginals.
            for t in range(1, length):
                pairwise = (
                    alpha[t - 1][:, None]
                    + transition
                    + emissions[t][None, :]
                    + beta[t][None, :]
                    - log_z
                )
                xi = np.exp(pairwise)
                grad_transition += xi
                grad_transition[label_indices[t - 1], label_indices[t]] -= 1.0

        # L2 regularisation.
        negative_log_likelihood += 0.5 * self.l2 * float(np.dot(params, params))
        gradient = np.concatenate(
            [grad_emission.ravel(), grad_transition.ravel(), grad_start, grad_end]
        )
        gradient += self.l2 * params
        return negative_log_likelihood, gradient

    # ----------------------------------------------------------- inference

    def _emission_scores(self, feature_sequence: Sequence[Sequence[str]]) -> np.ndarray:
        n_labels = len(self.label_vocab)
        emissions = np.zeros((len(feature_sequence), n_labels), dtype=np.float64)
        for t, token_features in enumerate(feature_sequence):
            indices = [
                index
                for feature in token_features
                if (index := self.feature_vocab.get(feature)) is not None
            ]
            if indices:
                emissions[t] = self.emission_weights[np.array(indices, dtype=np.int64)].sum(axis=0)
        return emissions

    def _forward(self, emissions: np.ndarray) -> np.ndarray:
        return self._forward_scores(emissions, self.transition_weights, self.start_weights)

    def _backward(self, emissions: np.ndarray) -> np.ndarray:
        return self._backward_scores(emissions, self.transition_weights, self.end_weights)

    @staticmethod
    def _forward_scores(
        emissions: np.ndarray, transition: np.ndarray, start: np.ndarray
    ) -> np.ndarray:
        length, n_labels = emissions.shape
        alpha = np.empty((length, n_labels), dtype=np.float64)
        alpha[0] = start + emissions[0]
        for t in range(1, length):
            alpha[t] = logsumexp(alpha[t - 1][:, None] + transition, axis=0) + emissions[t]
        return alpha

    @staticmethod
    def _backward_scores(
        emissions: np.ndarray, transition: np.ndarray, end: np.ndarray
    ) -> np.ndarray:
        length, n_labels = emissions.shape
        beta = np.empty((length, n_labels), dtype=np.float64)
        beta[-1] = end
        for t in range(length - 2, -1, -1):
            beta[t] = logsumexp(transition + (emissions[t + 1] + beta[t + 1])[None, :], axis=1)
        return beta

    def _log_partition(self, emissions: np.ndarray) -> float:
        alpha = self._forward(emissions)
        return float(logsumexp(alpha[-1] + self.end_weights))

    def _viterbi(self, emissions: np.ndarray) -> list[int]:
        length, n_labels = emissions.shape
        scores = self.start_weights + emissions[0]
        backpointers = np.zeros((length, n_labels), dtype=np.int64)
        for t in range(1, length):
            candidate = scores[:, None] + self.transition_weights
            backpointers[t] = np.argmax(candidate, axis=0)
            scores = candidate[backpointers[t], np.arange(n_labels)] + emissions[t]
        scores = scores + self.end_weights
        best_last = int(np.argmax(scores))
        path = [best_last]
        for t in range(length - 1, 0, -1):
            path.append(int(backpointers[t, path[-1]]))
        path.reverse()
        return path

    # -------------------------------------------------------------- helpers

    def _split(
        self, params: np.ndarray, n_features: int, n_labels: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        emission_size = n_features * n_labels
        transition_size = n_labels * n_labels
        emission = params[:emission_size].reshape(n_features, n_labels)
        transition = params[emission_size : emission_size + transition_size].reshape(
            n_labels, n_labels
        )
        start = params[emission_size + transition_size : emission_size + transition_size + n_labels]
        end = params[emission_size + transition_size + n_labels :]
        return emission, transition, start, end

    def _unpack(self, params: np.ndarray, n_features: int, n_labels: int) -> None:
        emission, transition, start, end = self._split(params, n_features, n_labels)
        self.emission_weights = emission.copy()
        self.transition_weights = transition.copy()
        self.start_weights = start.copy()
        self.end_weights = end.copy()
