"""Label encodings for sequence labelling.

The paper's annotation scheme assigns one of seven entity types (or nothing)
to every token.  Internally we support both *raw* tagging (each token carries
its entity type directly, the Stanford NER convention) and *BIO* encoding
(Begin/Inside/Outside), plus conversion between token tags and entity spans,
which the entity-level F1 metric needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataError, SchemaError

__all__ = [
    "OUTSIDE_TAG",
    "EntitySpan",
    "bio_decode",
    "bio_encode",
    "spans_from_tags",
    "tags_from_spans",
]

#: Tag used for tokens outside every entity (Stanford NER uses "O").
OUTSIDE_TAG = "O"


@dataclass(frozen=True, slots=True)
class EntitySpan:
    """A labelled span of tokens.

    Attributes:
        label: Entity type (e.g. ``"NAME"`` or ``"UNIT"``).
        start: Index of the first token of the span.
        end: Index one past the last token of the span.
    """

    label: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise DataError(f"invalid span boundaries: start={self.start}, end={self.end}")

    @property
    def length(self) -> int:
        """Number of tokens covered by the span."""
        return self.end - self.start

    def tokens(self, sequence: list[str]) -> list[str]:
        """Slice of ``sequence`` covered by this span."""
        return sequence[self.start : self.end]


def bio_encode(raw_tags: list[str]) -> list[str]:
    """Convert raw per-token entity tags to BIO tags.

    Consecutive tokens with the same raw tag form a single entity; the first
    becomes ``B-<label>`` and the rest ``I-<label>``.  ``O`` passes through.

    >>> bio_encode(["QUANTITY", "UNIT", "NAME", "NAME", "O"])
    ['B-QUANTITY', 'B-UNIT', 'B-NAME', 'I-NAME', 'O']
    """
    encoded: list[str] = []
    previous = OUTSIDE_TAG
    for tag in raw_tags:
        if tag == OUTSIDE_TAG:
            encoded.append(OUTSIDE_TAG)
        elif tag == previous:
            encoded.append(f"I-{tag}")
        else:
            encoded.append(f"B-{tag}")
        previous = tag
    return encoded


def bio_decode(bio_tags: list[str]) -> list[str]:
    """Convert BIO tags back to raw per-token entity tags.

    An ``I-`` tag that does not continue the preceding entity is tolerated and
    treated as a begin (the usual "conll relaxed" reading), because greedy
    decoders occasionally emit such sequences.
    """
    raw: list[str] = []
    for tag in bio_tags:
        if tag == OUTSIDE_TAG:
            raw.append(OUTSIDE_TAG)
        elif tag.startswith(("B-", "I-")):
            raw.append(tag[2:])
        else:
            raise SchemaError(f"not a BIO tag: {tag!r}")
    return raw


def spans_from_tags(raw_tags: list[str]) -> list[EntitySpan]:
    """Group consecutive identical raw tags into :class:`EntitySpan` objects.

    >>> spans_from_tags(["QUANTITY", "UNIT", "NAME", "NAME"])
    [EntitySpan(label='QUANTITY', start=0, end=1), EntitySpan(label='UNIT', start=1, end=2), EntitySpan(label='NAME', start=2, end=4)]
    """
    spans: list[EntitySpan] = []
    current_label: str | None = None
    current_start = 0
    for index, tag in enumerate(raw_tags):
        if tag == current_label:
            continue
        if current_label not in (None, OUTSIDE_TAG):
            spans.append(EntitySpan(label=current_label, start=current_start, end=index))
        current_label = tag
        current_start = index
    if current_label not in (None, OUTSIDE_TAG):
        spans.append(EntitySpan(label=current_label, start=current_start, end=len(raw_tags)))
    return spans


def tags_from_spans(spans: list[EntitySpan], length: int) -> list[str]:
    """Expand spans back into a raw tag sequence of ``length`` tokens.

    Raises:
        DataError: If spans overlap or extend past ``length``.
    """
    tags = [OUTSIDE_TAG] * length
    for span in spans:
        if span.end > length:
            raise DataError(f"span {span} extends past sequence length {length}")
        for position in range(span.start, span.end):
            if tags[position] != OUTSIDE_TAG:
                raise DataError(f"span {span} overlaps an earlier span at position {position}")
            tags[position] = span.label
    return tags
