"""Feature templates for the ingredient and instruction NER models.

The Stanford NER tagger used in the paper relies on local lexical features
(word identity, affixes, shape, neighbouring words).  The extractors here
reproduce that recipe-tuned feature design:

* :class:`IngredientFeatureExtractor` -- adds features for quantity shapes,
  measurement-unit suffixes, temperature/size/freshness trigger words and
  parenthesis context, which is what distinguishes STATE from NAME and UNIT
  from NAME in homograph cases ("clove").
* :class:`InstructionFeatureExtractor` -- adds verb-position and imperative
  features useful for spotting cooking techniques and utensils.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

__all__ = [
    "IngredientFeatureExtractor",
    "InstructionFeatureExtractor",
    "TokenFeatureExtractor",
]

_NUMERIC_RE = re.compile(r"^\d+(?:\.\d+)?$")
_FRACTION_RE = re.compile(r"^\d+(?: \d+)?/\d+$")
_RANGE_RE = re.compile(r"^\d+(?:\.\d+)?-\d+(?:\.\d+)?$")

#: Trigger words strongly associated with particular ingredient attributes.
_SIZE_WORDS = frozenset({"small", "medium", "large", "big", "extra-large", "jumbo"})
_TEMP_WORDS = frozenset({"hot", "cold", "warm", "chilled", "frozen", "room", "lukewarm", "iced"})
_FRESHNESS_WORDS = frozenset({"fresh", "dried", "dry", "freeze-dried", "canned"})
_UNIT_SUFFIXES = ("spoon", "spoons", "ounce", "ounces", "gram", "grams", "liter", "litre")
_STATE_SUFFIXES = ("ed", "en")


def _shape(token: str) -> str:
    chars = []
    for char in token:
        if char.isdigit():
            chars.append("d")
        elif char.isalpha():
            chars.append("X" if char.isupper() else "x")
        else:
            chars.append(char)
    collapsed: list[str] = []
    for char in chars:
        if not collapsed or collapsed[-1] != char:
            collapsed.append(char)
    return "".join(collapsed)


def _is_numberish(token: str) -> bool:
    return bool(
        _NUMERIC_RE.match(token) or _FRACTION_RE.match(token) or _RANGE_RE.match(token)
    )


class TokenFeatureExtractor:
    """Base extractor producing context-window lexical features.

    Subclasses extend :meth:`token_features` with domain-specific triggers.
    The extractor is deliberately stateless so one instance can be shared by
    parallel experiments.
    """

    window = 2

    def sequence_features(self, tokens: Sequence[str]) -> list[list[str]]:
        """Feature lists for every position of ``tokens``."""
        lowered = [token.lower() for token in tokens]
        return [self.token_features(lowered, index, tokens) for index in range(len(tokens))]

    def token_features(self, lowered: Sequence[str], index: int, raw: Sequence[str]) -> list[str]:
        """Features for position ``index``; ``lowered`` is the lower-cased view."""
        token = lowered[index]
        original = raw[index]
        features = [
            "bias",
            f"w={token}",
            f"suffix3={token[-3:]}",
            f"suffix2={token[-2:]}",
            f"prefix2={token[:2]}",
            f"shape={_shape(original)}",
            f"pos_in_seq={'first' if index == 0 else 'last' if index == len(lowered) - 1 else 'mid'}",
        ]
        if _is_numberish(token):
            features.append("is_number")
        if "-" in token:
            features.append("has_hyphen")
        if original[:1].isupper():
            features.append("is_capitalised")
        for offset in range(1, self.window + 1):
            if index - offset >= 0:
                features.append(f"w[-{offset}]={lowered[index - offset]}")
            else:
                features.append(f"w[-{offset}]=<s>")
            if index + offset < len(lowered):
                features.append(f"w[+{offset}]={lowered[index + offset]}")
            else:
                features.append(f"w[+{offset}]=</s>")
        if index > 0 and _is_numberish(lowered[index - 1]):
            features.append("prev_is_number")
        if index + 1 < len(lowered) and _is_numberish(lowered[index + 1]):
            features.append("next_is_number")
        return features


class IngredientFeatureExtractor(TokenFeatureExtractor):
    """Features tuned for the seven ingredient attributes of Table II."""

    def token_features(self, lowered: Sequence[str], index: int, raw: Sequence[str]) -> list[str]:
        features = super().token_features(lowered, index, raw)
        token = lowered[index]
        if token in _SIZE_WORDS:
            features.append("size_trigger")
        if token in _TEMP_WORDS:
            features.append("temp_trigger")
        if token in _FRESHNESS_WORDS:
            features.append("freshness_trigger")
        if token.endswith(_UNIT_SUFFIXES):
            features.append("unit_suffix")
        if token.endswith(_STATE_SUFFIXES) and not _is_numberish(token):
            features.append("participle_suffix")
        if token.endswith("ly"):
            features.append("adverb_suffix")
        # Parenthesis context: "( thawed )", "(8 ounce) package".
        if "(" in lowered[:index] and ")" not in lowered[:index]:
            features.append("inside_parens")
        if index > 0 and lowered[index - 1] == ",":
            features.append("after_comma")
        if "," in lowered[:index]:
            features.append("after_any_comma")
        return features


class InstructionFeatureExtractor(TokenFeatureExtractor):
    """Features tuned for processes, utensils and ingredients in instructions."""

    _UTENSIL_SUFFIXES = ("pan", "pot", "bowl", "oven", "sheet", "skillet", "dish", "board")
    _PREPOSITIONS = frozenset({"in", "into", "with", "on", "onto", "over", "to", "from", "using"})

    def token_features(self, lowered: Sequence[str], index: int, raw: Sequence[str]) -> list[str]:
        features = super().token_features(lowered, index, raw)
        token = lowered[index]
        if index == 0:
            features.append("sentence_initial")  # imperative verbs open the step
        if token.endswith(self._UTENSIL_SUFFIXES):
            features.append("utensil_suffix")
        if token.endswith("ing"):
            features.append("gerund_suffix")
        if index > 0 and lowered[index - 1] in self._PREPOSITIONS:
            features.append("after_preposition")
        if index > 0 and lowered[index - 1] in {"a", "an", "the"}:
            features.append("after_determiner")
        if index + 1 < len(lowered) and lowered[index + 1] in self._PREPOSITIONS:
            features.append("before_preposition")
        return features
