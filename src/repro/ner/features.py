"""Feature templates for the ingredient and instruction NER models.

The Stanford NER tagger used in the paper relies on local lexical features
(word identity, affixes, shape, neighbouring words).  The extractors here
reproduce that recipe-tuned feature design:

* :class:`IngredientFeatureExtractor` -- adds features for quantity shapes,
  measurement-unit suffixes, temperature/size/freshness trigger words and
  parenthesis context, which is what distinguishes STATE from NAME and UNIT
  from NAME in homograph cases ("clove").
* :class:`InstructionFeatureExtractor` -- adds verb-position and imperative
  features useful for spotting cooking techniques and utensils.

Feature extraction sits on the serving hot path (it is the one stage the
batched Viterbi kernels cannot amortise), and recipe text draws from a small
vocabulary, so every *token-static* feature group is memoised per token with
``functools.lru_cache``: the f-string formatting, shape computation and
regex checks run once per distinct token instead of once per occurrence.
Only genuinely positional features (sequence position, context windows,
prefix punctuation state) are computed per call, and the emitted feature
lists are identical to the uncached implementation, element for element.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from functools import lru_cache

__all__ = [
    "IngredientFeatureExtractor",
    "InstructionFeatureExtractor",
    "TokenFeatureExtractor",
]

_NUMERIC_RE = re.compile(r"^\d+(?:\.\d+)?$")
_FRACTION_RE = re.compile(r"^\d+(?: \d+)?/\d+$")
_RANGE_RE = re.compile(r"^\d+(?:\.\d+)?-\d+(?:\.\d+)?$")

#: Trigger words strongly associated with particular ingredient attributes.
_SIZE_WORDS = frozenset({"small", "medium", "large", "big", "extra-large", "jumbo"})
_TEMP_WORDS = frozenset({"hot", "cold", "warm", "chilled", "frozen", "room", "lukewarm", "iced"})
_FRESHNESS_WORDS = frozenset({"fresh", "dried", "dry", "freeze-dried", "canned"})
_UNIT_SUFFIXES = ("spoon", "spoons", "ounce", "ounces", "gram", "grams", "liter", "litre")
_STATE_SUFFIXES = ("ed", "en")

_UTENSIL_SUFFIXES = ("pan", "pot", "bowl", "oven", "sheet", "skillet", "dish", "board")
_PREPOSITIONS = frozenset({"in", "into", "with", "on", "onto", "over", "to", "from", "using"})
_DETERMINERS = frozenset({"a", "an", "the"})

#: Per-token memo capacity; recipe vocabularies are a few thousand types, so
#: this never evicts in practice while still bounding adversarial input.
_MEMO_SIZE = 131072


def _shape(token: str) -> str:
    chars = []
    for char in token:
        if char.isdigit():
            chars.append("d")
        elif char.isalpha():
            chars.append("X" if char.isupper() else "x")
        else:
            chars.append(char)
    collapsed: list[str] = []
    for char in chars:
        if not collapsed or collapsed[-1] != char:
            collapsed.append(char)
    return "".join(collapsed)


@lru_cache(maxsize=_MEMO_SIZE)
def _is_numberish(token: str) -> bool:
    return bool(
        _NUMERIC_RE.match(token) or _FRACTION_RE.match(token) or _RANGE_RE.match(token)
    )


@lru_cache(maxsize=_MEMO_SIZE)
def _token_lexical(token: str, original: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The base token-static features: (head before pos_in_seq, flags after)."""
    head = (
        "bias",
        f"w={token}",
        f"suffix3={token[-3:]}",
        f"suffix2={token[-2:]}",
        f"prefix2={token[:2]}",
        f"shape={_shape(original)}",
    )
    flags = []
    if _is_numberish(token):
        flags.append("is_number")
    if "-" in token:
        flags.append("has_hyphen")
    if original[:1].isupper():
        flags.append("is_capitalised")
    return head, tuple(flags)


@lru_cache(maxsize=_MEMO_SIZE)
def _neighbor_feature(label: str, token: str) -> str:
    """Cached ``w[-1]=salt`` style context-window strings."""
    return f"w[{label}]={token}"


@lru_cache(maxsize=64)
def _window_labels(window: int) -> tuple[tuple[int, str, str, str, str], ...]:
    """(offset, left/right labels, left/right boundary features) per offset."""
    return tuple(
        (offset, f"-{offset}", f"+{offset}", f"w[-{offset}]=<s>", f"w[+{offset}]=</s>")
        for offset in range(1, window + 1)
    )


@lru_cache(maxsize=_MEMO_SIZE)
def _ingredient_lexical(token: str) -> tuple[str, ...]:
    extras = []
    if token in _SIZE_WORDS:
        extras.append("size_trigger")
    if token in _TEMP_WORDS:
        extras.append("temp_trigger")
    if token in _FRESHNESS_WORDS:
        extras.append("freshness_trigger")
    if token.endswith(_UNIT_SUFFIXES):
        extras.append("unit_suffix")
    if token.endswith(_STATE_SUFFIXES) and not _is_numberish(token):
        extras.append("participle_suffix")
    if token.endswith("ly"):
        extras.append("adverb_suffix")
    return tuple(extras)


@lru_cache(maxsize=_MEMO_SIZE)
def _instruction_lexical(token: str) -> tuple[str, ...]:
    extras = []
    if token.endswith(_UTENSIL_SUFFIXES):
        extras.append("utensil_suffix")
    if token.endswith("ing"):
        extras.append("gerund_suffix")
    return tuple(extras)


class TokenFeatureExtractor:
    """Base extractor producing context-window lexical features.

    Subclasses extend :meth:`token_features` with domain-specific triggers.
    The extractor is deliberately stateless so one instance can be shared by
    parallel experiments and by the serving threads (the token memos above
    are module-level and thread-safe).
    """

    window = 2

    def sequence_features(self, tokens: Sequence[str]) -> list[list[str]]:
        """Feature lists for every position of ``tokens``."""
        lowered = [token.lower() for token in tokens]
        return [self.token_features(lowered, index, tokens) for index in range(len(tokens))]

    def token_features(self, lowered: Sequence[str], index: int, raw: Sequence[str]) -> list[str]:
        """Features for position ``index``; ``lowered`` is the lower-cased view."""
        token = lowered[index]
        length = len(lowered)
        head, flags = _token_lexical(token, raw[index])
        features = list(head)
        features.append(
            "pos_in_seq=first"
            if index == 0
            else "pos_in_seq=last" if index == length - 1 else "pos_in_seq=mid"
        )
        features.extend(flags)
        for offset, left_label, right_label, left_boundary, right_boundary in _window_labels(
            self.window
        ):
            features.append(
                _neighbor_feature(left_label, lowered[index - offset])
                if index - offset >= 0
                else left_boundary
            )
            features.append(
                _neighbor_feature(right_label, lowered[index + offset])
                if index + offset < length
                else right_boundary
            )
        if index > 0 and _is_numberish(lowered[index - 1]):
            features.append("prev_is_number")
        if index + 1 < length and _is_numberish(lowered[index + 1]):
            features.append("next_is_number")
        return features


class IngredientFeatureExtractor(TokenFeatureExtractor):
    """Features tuned for the seven ingredient attributes of Table II."""

    def token_features(self, lowered: Sequence[str], index: int, raw: Sequence[str]) -> list[str]:
        features = super().token_features(lowered, index, raw)
        token = lowered[index]
        features.extend(_ingredient_lexical(token))
        # Parenthesis context: "( thawed )", "(8 ounce) package".
        has_open = has_close = has_comma = False
        for position in range(index):
            previous = lowered[position]
            if previous == "(":
                has_open = True
            elif previous == ")":
                has_close = True
            elif previous == ",":
                has_comma = True
        if has_open and not has_close:
            features.append("inside_parens")
        if index > 0 and lowered[index - 1] == ",":
            features.append("after_comma")
        if has_comma:
            features.append("after_any_comma")
        return features


class InstructionFeatureExtractor(TokenFeatureExtractor):
    """Features tuned for processes, utensils and ingredients in instructions."""

    def token_features(self, lowered: Sequence[str], index: int, raw: Sequence[str]) -> list[str]:
        features = super().token_features(lowered, index, raw)
        token = lowered[index]
        if index == 0:
            features.append("sentence_initial")  # imperative verbs open the step
        features.extend(_instruction_lexical(token))
        if index > 0 and lowered[index - 1] in _PREPOSITIONS:
            features.append("after_preposition")
        if index > 0 and lowered[index - 1] in _DETERMINERS:
            features.append("after_determiner")
        if index + 1 < len(lowered) and lowered[index + 1] in _PREPOSITIONS:
            features.append("before_preposition")
        return features
