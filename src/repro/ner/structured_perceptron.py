"""Averaged structured perceptron sequence labeller.

Trains in a handful of passes over the data with Viterbi decoding inside the
loop, which makes it roughly an order of magnitude faster than the CRF while
landing within a point of F1 on the recipe corpora.  The large-corpus
experiments (Table IV sweep, full-RecipeDB statistics) default to this model;
the CRF remains available for fidelity to the paper's Stanford NER setup.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.engine import (
    EncodedDataset,
    EncodedSequence,
    FeatureEncoder,
    decode_emissions,
    flat_emission_scores,
    sequence_emission_scores,
)
from repro.errors import ConfigurationError, DataError, NotFittedError
from repro.text.vocab import Vocabulary
from repro.utils import make_py_rng, require_equal_lengths, require_nonempty

__all__ = ["StructuredPerceptron"]


class StructuredPerceptron:
    """First-order structured perceptron with weight averaging.

    The parameterisation matches :class:`~repro.ner.crf.LinearChainCRF`
    (emission matrix, transition matrix, start/end vectors), so the two models
    are interchangeable behind :class:`~repro.ner.model.NerModel`.

    Args:
        iterations: Number of passes over the training data.
        seed: Shuffle seed; training order affects the final weights.
    """

    def __init__(self, *, iterations: int = 8, seed: int | None = None) -> None:
        if iterations <= 0:
            raise ConfigurationError(f"iterations must be positive, got {iterations}")
        self.iterations = int(iterations)
        self.seed = seed
        self.feature_vocab: Vocabulary | None = None
        self.label_vocab: Vocabulary | None = None
        self.emission_weights: np.ndarray | None = None
        self.transition_weights: np.ndarray | None = None
        self.start_weights: np.ndarray | None = None
        self.end_weights: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        """Whether the model holds fitted weights."""
        return self.emission_weights is not None

    @property
    def encoder(self) -> FeatureEncoder:
        """The train/predict feature encoder (shared deduplicating path)."""
        if self.feature_vocab is None:
            raise NotFittedError("model must be fitted first")
        return FeatureEncoder(self.feature_vocab)

    def fit(
        self,
        feature_sequences: Sequence[Sequence[Sequence[str]]],
        label_sequences: Sequence[Sequence[str]],
    ) -> "StructuredPerceptron":
        """Train on parallel feature/label sequences."""
        require_nonempty("feature_sequences", feature_sequences)
        require_equal_lengths(
            "feature_sequences", feature_sequences, "label_sequences", label_sequences
        )
        self._build_vocabularies(feature_sequences, label_sequences)
        encoded = EncodedDataset.build(
            self.encoder, self.label_vocab, feature_sequences, label_sequences
        ).per_sentence()

        n_features = len(self.feature_vocab)
        n_labels = len(self.label_vocab)
        emission = np.zeros((n_features, n_labels), dtype=np.float64)
        transition = np.zeros((n_labels, n_labels), dtype=np.float64)
        start = np.zeros(n_labels, dtype=np.float64)
        end = np.zeros(n_labels, dtype=np.float64)
        emission_sum = np.zeros_like(emission)
        transition_sum = np.zeros_like(transition)
        start_sum = np.zeros_like(start)
        end_sum = np.zeros_like(end)

        rng = make_py_rng(self.seed)
        order = list(range(len(encoded)))
        steps = 0
        for _ in range(self.iterations):
            rng.shuffle(order)
            for index in order:
                sequence, gold = encoded[index]
                emissions = sequence_emission_scores(sequence, emission)
                predicted = self._viterbi(emissions, transition, start, end)
                steps += 1
                if not np.array_equal(predicted, gold):
                    self._apply_update(
                        sequence,
                        gold,
                        predicted,
                        emission,
                        transition,
                        start,
                        end,
                    )
                emission_sum += emission
                transition_sum += transition
                start_sum += start
                end_sum += end

        # Averaging stabilises the perceptron exactly as in the POS tagger.
        self.emission_weights = emission_sum / steps
        self.transition_weights = transition_sum / steps
        self.start_weights = start_sum / steps
        self.end_weights = end_sum / steps
        return self

    def predict(self, feature_sequence: Sequence[Sequence[str]]) -> list[str]:
        """Viterbi decode a single sentence."""
        if not self.is_trained:
            raise NotFittedError("StructuredPerceptron.predict called before fit()")
        if len(feature_sequence) == 0:
            return []
        sequence = self.encoder.encode_sequence(feature_sequence)
        emissions = sequence_emission_scores(sequence, self.emission_weights)
        path = self._viterbi(emissions, self.transition_weights, self.start_weights, self.end_weights)
        return [self.label_vocab.symbol(int(index)) for index in path]

    def predict_batch(
        self, feature_sequences: Sequence[Sequence[Sequence[str]]]
    ) -> list[list[str]]:
        """Viterbi decode many sentences with one padded kernel per bucket."""
        if not self.is_trained:
            raise NotFittedError("StructuredPerceptron.predict_batch called before fit()")
        if len(feature_sequences) == 0:
            return []
        batch = self.encoder.encode_batch(feature_sequences)
        flat = flat_emission_scores(batch.indices, batch.offsets, self.emission_weights)
        emission_matrices = [
            flat[batch.sentence_offsets[s] : batch.sentence_offsets[s + 1]]
            for s in range(batch.n_sentences)
        ]
        paths = decode_emissions(
            emission_matrices,
            self.transition_weights,
            self.start_weights,
            self.end_weights,
        )
        symbols = self.label_vocab.symbols()
        return [[symbols[index] for index in path.tolist()] for path in paths]

    def labels(self) -> list[str]:
        """Label inventory learnt during training."""
        if self.label_vocab is None:
            raise NotFittedError("model must be fitted first")
        return self.label_vocab.symbols()

    # ------------------------------------------------------------- internals

    def _build_vocabularies(
        self,
        feature_sequences: Sequence[Sequence[Sequence[str]]],
        label_sequences: Sequence[Sequence[str]],
    ) -> None:
        features = sorted(
            {
                feature
                for sentence in feature_sequences
                for token_features in sentence
                for feature in token_features
            }
        )
        self.feature_vocab = Vocabulary(features).freeze()
        labels = sorted({label for sentence in label_sequences for label in sentence})
        if not labels:
            raise DataError("no labels found in the training data")
        self.label_vocab = Vocabulary(labels).freeze()

    @staticmethod
    def _viterbi(
        emissions: np.ndarray,
        transition: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
    ) -> np.ndarray:
        length, n_labels = emissions.shape
        scores = start + emissions[0]
        backpointers = np.zeros((length, n_labels), dtype=np.int64)
        for t in range(1, length):
            candidate = scores[:, None] + transition
            backpointers[t] = np.argmax(candidate, axis=0)
            scores = candidate[backpointers[t], np.arange(n_labels)] + emissions[t]
        scores = scores + end
        best_last = int(np.argmax(scores))
        path = np.empty(length, dtype=np.int64)
        path[-1] = best_last
        for t in range(length - 1, 0, -1):
            path[t - 1] = backpointers[t, path[t]]
        return path

    @staticmethod
    def _apply_update(
        sequence: EncodedSequence,
        gold: np.ndarray,
        predicted: np.ndarray,
        emission: np.ndarray,
        transition: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
    ) -> None:
        length = len(sequence)
        for t in range(length):
            if gold[t] == predicted[t]:
                continue
            indices = sequence.token_indices(t)
            if indices.size:
                emission[indices, gold[t]] += 1.0
                emission[indices, predicted[t]] -= 1.0
        if gold[0] != predicted[0]:
            start[gold[0]] += 1.0
            start[predicted[0]] -= 1.0
        if gold[-1] != predicted[-1]:
            end[gold[-1]] += 1.0
            end[predicted[-1]] -= 1.0
        for t in range(1, length):
            gold_bigram = (gold[t - 1], gold[t])
            predicted_bigram = (predicted[t - 1], predicted[t])
            if gold_bigram != predicted_bigram:
                transition[gold_bigram] += 1.0
                transition[predicted_bigram] -= 1.0
