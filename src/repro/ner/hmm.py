"""Hidden Markov model baseline for sequence labelling.

The HMM is a *generative* baseline included for the model-family ablation:
it ignores all contextual features except the token identity (taken from the
``w=...`` feature emitted by the feature extractors) and models label
transitions and token emissions with add-one smoothed maximum-likelihood
estimates.  Decoding compiles the probability tables into dense arrays once
and runs the shared :mod:`repro.engine` batched Viterbi in log space,
preserving the historical tie-breaks of the dictionary-based decoder
(first-best backpointers, largest label for the final state).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Sequence

import numpy as np

from repro.engine import decode_emissions
from repro.errors import DataError, NotFittedError
from repro.utils import require_equal_lengths, require_nonempty

__all__ = ["HiddenMarkovModel"]

_UNKNOWN = "<unk>"
_WORD_FEATURE_PREFIX = "w="


def _observation(token_features: Sequence[str]) -> str:
    """Pull the token identity out of a feature list (``w=...``)."""
    for feature in token_features:
        if feature.startswith(_WORD_FEATURE_PREFIX):
            return feature[len(_WORD_FEATURE_PREFIX) :]
    # Fall back to the whole feature list hash; should not happen with the
    # provided extractors, but keeps the model usable with minimal features.
    return "|".join(token_features) if token_features else _UNKNOWN


class HiddenMarkovModel:
    """Add-one smoothed first-order HMM over token observations.

    Args:
        smoothing: Additive smoothing constant for transition and emission
            probabilities.
    """

    def __init__(self, *, smoothing: float = 1.0) -> None:
        if smoothing <= 0:
            raise DataError(f"smoothing must be positive, got {smoothing}")
        self.smoothing = float(smoothing)
        self._labels: list[str] = []
        self._vocabulary: set[str] = set()
        self._transition_log_prob: dict[tuple[str, str], float] = {}
        self._start_log_prob: dict[str, float] = {}
        self._emission_log_prob: dict[tuple[str, str], float] = {}
        self._emission_unknown_log_prob: dict[str, float] = {}
        self._trained = False
        self._compiled: dict | None = None

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._trained

    def fit(
        self,
        feature_sequences: Sequence[Sequence[Sequence[str]]],
        label_sequences: Sequence[Sequence[str]],
    ) -> "HiddenMarkovModel":
        """Estimate transition and emission tables from labelled sequences."""
        require_nonempty("feature_sequences", feature_sequences)
        require_equal_lengths(
            "feature_sequences", feature_sequences, "label_sequences", label_sequences
        )
        # Reset state so refitting never replays a previous corpus's tables.
        self._labels = []
        self._vocabulary = set()
        self._transition_log_prob = {}
        self._start_log_prob = {}
        self._emission_log_prob = {}
        self._emission_unknown_log_prob = {}
        transition_counts: dict[str, Counter] = defaultdict(Counter)
        start_counts: Counter = Counter()
        emission_counts: dict[str, Counter] = defaultdict(Counter)
        label_set: set[str] = set()

        for sentence, labels in zip(feature_sequences, label_sequences):
            require_equal_lengths("sentence", sentence, "labels", labels)
            if not labels:
                continue
            observations = [_observation(token_features) for token_features in sentence]
            start_counts[labels[0]] += 1
            for position, (observation, label) in enumerate(zip(observations, labels)):
                label_set.add(label)
                self._vocabulary.add(observation)
                emission_counts[label][observation] += 1
                if position > 0:
                    transition_counts[labels[position - 1]][label] += 1

        if not label_set:
            raise DataError("no labels found in the training data")
        self._labels = sorted(label_set)
        vocabulary_size = len(self._vocabulary) + 1  # +1 for the unknown word
        total_starts = sum(start_counts.values())

        for label in self._labels:
            self._start_log_prob[label] = math.log(
                (start_counts[label] + self.smoothing)
                / (total_starts + self.smoothing * len(self._labels))
            )
            transition_total = sum(transition_counts[label].values())
            for next_label in self._labels:
                self._transition_log_prob[(label, next_label)] = math.log(
                    (transition_counts[label][next_label] + self.smoothing)
                    / (transition_total + self.smoothing * len(self._labels))
                )
            emission_total = sum(emission_counts[label].values())
            denominator = emission_total + self.smoothing * vocabulary_size
            for observation, count in emission_counts[label].items():
                self._emission_log_prob[(label, observation)] = math.log(
                    (count + self.smoothing) / denominator
                )
            self._emission_unknown_log_prob[label] = math.log(self.smoothing / denominator)

        self._trained = True
        self._compiled = None
        return self

    def _compile(self) -> dict:
        """Freeze the probability dictionaries into dense decode arrays."""
        if self._compiled is not None:
            return self._compiled
        labels = self._labels
        n_labels = len(labels)
        observation_index = {
            observation: column for column, observation in enumerate(sorted(self._vocabulary))
        }
        unknown_column = len(observation_index)
        # Row per observation (last row = unknown), column per label; cells
        # reuse the exact stored floats so compiled decoding is bitwise
        # identical to dictionary lookups.
        label_index = {label: column for column, label in enumerate(labels)}
        emissions = np.empty((unknown_column + 1, n_labels), dtype=np.float64)
        for column_label, label in enumerate(labels):
            emissions[:, column_label] = self._emission_unknown_log_prob[label]
        for (label, observation), log_prob in self._emission_log_prob.items():
            emissions[observation_index[observation], label_index[label]] = log_prob
        transition = np.array(
            [
                [self._transition_log_prob[(prev, nxt)] for nxt in labels]
                for prev in labels
            ],
            dtype=np.float64,
        )
        start = np.array([self._start_log_prob[label] for label in labels], dtype=np.float64)
        self._compiled = {
            "observation_index": observation_index,
            "unknown_column": unknown_column,
            "emissions": emissions,
            "transition": transition,
            "start": start,
            "end": np.zeros(n_labels, dtype=np.float64),
        }
        return self._compiled

    def _emission_matrix(self, feature_sequence: Sequence[Sequence[str]]) -> np.ndarray:
        """Per-token emission log-prob matrix ``(len(sequence), n_labels)``."""
        compiled = self._compile()
        observation_index = compiled["observation_index"]
        unknown = compiled["unknown_column"]
        columns = [
            observation_index.get(_observation(token_features), unknown)
            for token_features in feature_sequence
        ]
        return compiled["emissions"][columns]

    def predict(self, feature_sequence: Sequence[Sequence[str]]) -> list[str]:
        """Viterbi decode a single sentence."""
        return self.predict_batch([feature_sequence])[0]

    def predict_batch(
        self, feature_sequences: Sequence[Sequence[Sequence[str]]]
    ) -> list[list[str]]:
        """Viterbi decode many sentences with one padded kernel per bucket."""
        if not self._trained:
            raise NotFittedError("HiddenMarkovModel.predict called before fit()")
        if len(feature_sequences) == 0:
            return []
        compiled = self._compile()
        emission_matrices = [
            self._emission_matrix(sequence) for sequence in feature_sequences
        ]
        paths = decode_emissions(
            emission_matrices,
            compiled["transition"],
            compiled["start"],
            compiled["end"],
            prefer_last_final=True,
        )
        labels = self._labels
        return [[labels[int(index)] for index in path] for path in paths]

    def labels(self) -> list[str]:
        """Label inventory learnt during training."""
        if not self._trained:
            raise NotFittedError("model must be fitted first")
        return list(self._labels)
