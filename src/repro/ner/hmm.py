"""Hidden Markov model baseline for sequence labelling.

The HMM is a *generative* baseline included for the model-family ablation:
it ignores all contextual features except the token identity (taken from the
``w=...`` feature emitted by the feature extractors) and models label
transitions and token emissions with add-one smoothed maximum-likelihood
estimates.  Decoding is Viterbi in log space.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Sequence

from repro.errors import DataError, NotFittedError
from repro.utils import require_equal_lengths, require_nonempty

__all__ = ["HiddenMarkovModel"]

_UNKNOWN = "<unk>"
_WORD_FEATURE_PREFIX = "w="


def _observation(token_features: Sequence[str]) -> str:
    """Pull the token identity out of a feature list (``w=...``)."""
    for feature in token_features:
        if feature.startswith(_WORD_FEATURE_PREFIX):
            return feature[len(_WORD_FEATURE_PREFIX) :]
    # Fall back to the whole feature list hash; should not happen with the
    # provided extractors, but keeps the model usable with minimal features.
    return "|".join(token_features) if token_features else _UNKNOWN


class HiddenMarkovModel:
    """Add-one smoothed first-order HMM over token observations.

    Args:
        smoothing: Additive smoothing constant for transition and emission
            probabilities.
    """

    def __init__(self, *, smoothing: float = 1.0) -> None:
        if smoothing <= 0:
            raise DataError(f"smoothing must be positive, got {smoothing}")
        self.smoothing = float(smoothing)
        self._labels: list[str] = []
        self._vocabulary: set[str] = set()
        self._transition_log_prob: dict[tuple[str, str], float] = {}
        self._start_log_prob: dict[str, float] = {}
        self._emission_log_prob: dict[tuple[str, str], float] = {}
        self._emission_unknown_log_prob: dict[str, float] = {}
        self._trained = False

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._trained

    def fit(
        self,
        feature_sequences: Sequence[Sequence[Sequence[str]]],
        label_sequences: Sequence[Sequence[str]],
    ) -> "HiddenMarkovModel":
        """Estimate transition and emission tables from labelled sequences."""
        require_nonempty("feature_sequences", feature_sequences)
        require_equal_lengths(
            "feature_sequences", feature_sequences, "label_sequences", label_sequences
        )
        transition_counts: dict[str, Counter] = defaultdict(Counter)
        start_counts: Counter = Counter()
        emission_counts: dict[str, Counter] = defaultdict(Counter)
        label_set: set[str] = set()

        for sentence, labels in zip(feature_sequences, label_sequences):
            require_equal_lengths("sentence", sentence, "labels", labels)
            if not labels:
                continue
            observations = [_observation(token_features) for token_features in sentence]
            start_counts[labels[0]] += 1
            for position, (observation, label) in enumerate(zip(observations, labels)):
                label_set.add(label)
                self._vocabulary.add(observation)
                emission_counts[label][observation] += 1
                if position > 0:
                    transition_counts[labels[position - 1]][label] += 1

        if not label_set:
            raise DataError("no labels found in the training data")
        self._labels = sorted(label_set)
        vocabulary_size = len(self._vocabulary) + 1  # +1 for the unknown word
        total_starts = sum(start_counts.values())

        for label in self._labels:
            self._start_log_prob[label] = math.log(
                (start_counts[label] + self.smoothing)
                / (total_starts + self.smoothing * len(self._labels))
            )
            transition_total = sum(transition_counts[label].values())
            for next_label in self._labels:
                self._transition_log_prob[(label, next_label)] = math.log(
                    (transition_counts[label][next_label] + self.smoothing)
                    / (transition_total + self.smoothing * len(self._labels))
                )
            emission_total = sum(emission_counts[label].values())
            denominator = emission_total + self.smoothing * vocabulary_size
            for observation, count in emission_counts[label].items():
                self._emission_log_prob[(label, observation)] = math.log(
                    (count + self.smoothing) / denominator
                )
            self._emission_unknown_log_prob[label] = math.log(self.smoothing / denominator)

        self._trained = True
        return self

    def predict(self, feature_sequence: Sequence[Sequence[str]]) -> list[str]:
        """Viterbi decode a single sentence."""
        if not self._trained:
            raise NotFittedError("HiddenMarkovModel.predict called before fit()")
        if len(feature_sequence) == 0:
            return []
        observations = [_observation(token_features) for token_features in feature_sequence]
        # Viterbi over log probabilities.
        scores = {
            label: self._start_log_prob[label] + self._emission(label, observations[0])
            for label in self._labels
        }
        backpointers: list[dict[str, str]] = []
        for observation in observations[1:]:
            new_scores: dict[str, float] = {}
            pointers: dict[str, str] = {}
            for label in self._labels:
                best_prev, best_score = None, -math.inf
                for prev_label in self._labels:
                    candidate = scores[prev_label] + self._transition_log_prob[(prev_label, label)]
                    if candidate > best_score:
                        best_prev, best_score = prev_label, candidate
                new_scores[label] = best_score + self._emission(label, observation)
                pointers[label] = best_prev
            scores = new_scores
            backpointers.append(pointers)
        best_last = max(self._labels, key=lambda label: (scores[label], label))
        path = [best_last]
        for pointers in reversed(backpointers):
            path.append(pointers[path[-1]])
        path.reverse()
        return path

    def predict_batch(
        self, feature_sequences: Sequence[Sequence[Sequence[str]]]
    ) -> list[list[str]]:
        """Viterbi decode many sentences."""
        return [self.predict(sequence) for sequence in feature_sequences]

    def labels(self) -> list[str]:
        """Label inventory learnt during training."""
        if not self._trained:
            raise NotFittedError("model must be fitted first")
        return list(self._labels)

    def _emission(self, label: str, observation: str) -> float:
        log_prob = self._emission_log_prob.get((label, observation))
        if log_prob is None:
            return self._emission_unknown_log_prob[label]
        return log_prob
