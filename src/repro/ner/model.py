"""High-level NER model API used by the recipe pipelines.

:class:`NerModel` wraps a feature extractor together with one of the three
sequence labellers (CRF, structured perceptron, HMM) and exposes train /
tag / evaluate operations on *token* sequences, which is the level the core
pipelines work at.  The paper's two NER models (ingredients section,
instructions section) are both instances of this class with different
feature extractors and label inventories.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.engine import InferenceSession
from repro.errors import ConfigurationError, DataError
from repro.ner.crf import LinearChainCRF
from repro.ner.encoding import OUTSIDE_TAG, spans_from_tags
from repro.ner.features import (
    IngredientFeatureExtractor,
    InstructionFeatureExtractor,
    TokenFeatureExtractor,
)
from repro.ner.hmm import HiddenMarkovModel
from repro.ner.structured_perceptron import StructuredPerceptron
from repro.utils import require_equal_lengths

__all__ = ["NerModel", "TaggedEntity", "make_sequence_model", "SEQUENCE_MODEL_FAMILIES"]

#: Model families accepted by :func:`make_sequence_model`.
SEQUENCE_MODEL_FAMILIES = ("crf", "perceptron", "hmm")


@dataclass(frozen=True, slots=True)
class TaggedEntity:
    """An extracted entity: label, covered text and token span."""

    label: str
    text: str
    start: int
    end: int


def make_sequence_model(
    family: str,
    *,
    seed: int | None = None,
    crf_l2: float = 1.0,
    crf_max_iterations: int = 120,
    perceptron_iterations: int = 8,
):
    """Instantiate a sequence labeller by family name.

    Args:
        family: ``"crf"``, ``"perceptron"`` or ``"hmm"``.
        seed: Seed forwarded to models with stochastic training order.
        crf_l2: L2 strength for the CRF.
        crf_max_iterations: L-BFGS iteration cap for the CRF.
        perceptron_iterations: Training epochs for the structured perceptron.
    """
    if family == "crf":
        return LinearChainCRF(l2=crf_l2, max_iterations=crf_max_iterations)
    if family == "perceptron":
        return StructuredPerceptron(iterations=perceptron_iterations, seed=seed)
    if family == "hmm":
        return HiddenMarkovModel()
    raise ConfigurationError(
        f"unknown sequence model family {family!r}; expected one of {SEQUENCE_MODEL_FAMILIES}"
    )


class NerModel:
    """Named-entity recogniser over token sequences.

    Args:
        feature_extractor: Converts token sequences into per-token feature
            lists.  Use :class:`IngredientFeatureExtractor` for the
            ingredients section and :class:`InstructionFeatureExtractor` for
            the instructions section.
        family: Sequence-labeller family (``"crf"``, ``"perceptron"``, ``"hmm"``).
        seed: Seed for stochastic training procedures.
        **model_options: Extra options forwarded to :func:`make_sequence_model`.
    """

    def __init__(
        self,
        feature_extractor: TokenFeatureExtractor | None = None,
        *,
        family: str = "perceptron",
        seed: int | None = None,
        **model_options,
    ) -> None:
        self.feature_extractor = feature_extractor or IngredientFeatureExtractor()
        self.family = family
        self.model = make_sequence_model(family, seed=seed, **model_options)
        self.session = InferenceSession()

    # ----------------------------------------------------------------- train

    @property
    def is_trained(self) -> bool:
        """Whether the underlying sequence model is fitted."""
        return self.model.is_trained

    def train(
        self,
        token_sequences: Sequence[Sequence[str]],
        tag_sequences: Sequence[Sequence[str]],
    ) -> "NerModel":
        """Train on parallel token/tag sequences (raw per-token entity tags)."""
        require_equal_lengths("token_sequences", token_sequences, "tag_sequences", tag_sequences)
        if len(token_sequences) == 0:
            raise DataError("cannot train an NER model on an empty dataset")
        features = [self.feature_extractor.sequence_features(tokens) for tokens in token_sequences]
        labels = [list(tags) for tags in tag_sequences]
        self.model.fit(features, labels)
        self.session.clear()
        return self

    # ------------------------------------------------------------------- tag

    def _features(self, tokens: Sequence[str]) -> list[list[str]]:
        """Session-cached feature extraction keyed on the token tuple."""
        key = tuple(tokens)
        cached = self.session.get_features(key)
        if cached is None:
            cached = self.feature_extractor.sequence_features(tokens)
            self.session.put_features(key, cached)
        return cached

    def tag(self, tokens: Sequence[str]) -> list[str]:
        """Predict one raw entity tag per token."""
        if len(tokens) == 0:
            return []
        key = tuple(tokens)
        cached = self.session.get_decode(key)
        if cached is None:
            cached = tuple(self.model.predict(self._features(tokens)))
            self.session.put_decode(key, cached)
        return list(cached)

    def tag_batch(self, token_sequences: Sequence[Sequence[str]]) -> list[list[str]]:
        """Tag many token sequences with one batched decode for cache misses.

        Distinct uncached sequences are decoded together through the model's
        ``predict_batch`` (length-bucketed batch Viterbi for the engine-backed
        labelers); results are identical to calling :meth:`tag` per sequence.
        """
        results: list[list[str] | None] = [None] * len(token_sequences)
        miss_positions: dict[tuple[str, ...], list[int]] = {}
        for position, tokens in enumerate(token_sequences):
            if len(tokens) == 0:
                results[position] = []
                continue
            key = tuple(tokens)
            cached = self.session.get_decode(key)
            if cached is not None:
                results[position] = list(cached)
            else:
                miss_positions.setdefault(key, []).append(position)
        if miss_positions:
            miss_keys = list(miss_positions)
            features = [self._features(key) for key in miss_keys]
            predictions = self.model.predict_batch(features)
            for key, tags in zip(miss_keys, predictions):
                self.session.put_decode(key, tuple(tags))
                for position in miss_positions[key]:
                    results[position] = list(tags)
        return results  # type: ignore[return-value]

    def extract_entities(self, tokens: Sequence[str]) -> list[TaggedEntity]:
        """Group predicted tags into :class:`TaggedEntity` spans."""
        tags = self.tag(tokens)
        entities = []
        for span in spans_from_tags(tags):
            entities.append(
                TaggedEntity(
                    label=span.label,
                    text=" ".join(tokens[span.start : span.end]),
                    start=span.start,
                    end=span.end,
                )
            )
        return entities

    def labels(self) -> list[str]:
        """Labels known to the underlying model (includes ``O`` if present)."""
        return self.model.labels()

    # ----------------------------------------------------------------- stats

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss counters and entry counts of the inference session caches."""
        return self.session.stats()

    def reset_stats(self) -> None:
        """Zero the cache counters while keeping the cached entries warm."""
        self.session.reset_stats()

    # ------------------------------------------------------------------ eval

    def predicted_and_gold(
        self,
        token_sequences: Sequence[Sequence[str]],
        tag_sequences: Sequence[Sequence[str]],
    ) -> tuple[list[list[str]], list[list[str]]]:
        """Predictions next to gold tags, ready for the metrics module."""
        require_equal_lengths("token_sequences", token_sequences, "tag_sequences", tag_sequences)
        predictions = self.tag_batch(token_sequences)
        return predictions, [list(tags) for tags in tag_sequences]


def outside_ratio(tag_sequences: Sequence[Sequence[str]]) -> float:
    """Fraction of tokens tagged ``O`` (useful sanity diagnostic for datasets)."""
    total = sum(len(tags) for tags in tag_sequences)
    if total == 0:
        raise DataError("empty tag sequences")
    outside = sum(1 for tags in tag_sequences for tag in tags if tag == OUTSIDE_TAG)
    return outside / total
