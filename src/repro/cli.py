"""Command-line interface: paper artefacts plus the serving workflow.

Usage::

    python -m repro table1 --scale small --seed 0     # regenerate a table
    python -m repro all                               # every paper artefact
    python -m repro train --scale small --output bundle.json
    python -m repro tag --bundle bundle.json --section ingredient "2 cups sugar"
    python -m repro tag --bundle bundle.json --input corpus.jsonl \
        --output structured.jsonl --workers 4
    python -m repro index build --input structured.jsonl --output index.json
    python -m repro index build --input structured.jsonl --output manifest.json \
        --shards 4 --workers 4
    python -m repro index update --manifest manifest.json --input new.jsonl
    python -m repro index merge --manifest manifest.json --output manifest.json \
        --shards 2
    python -m repro index migrate --manifest manifest.json --format v2
    python -m repro index inspect --index manifest.json
    python -m repro index query --index index.json \
        'ingredient:tomato AND process:saute AND NOT ingredient:garlic'
    python -m repro index query --index manifest.json --rank -k 10 \
        --facet ingredient --workers 4 'ingredient:tomato OR ingredient:basil'
    python -m repro serve --bundle bundle.json --index manifest.json --port 8080
    python -m repro serve --bundle bundle.json --async --max-inflight 64 \
        --queue-depth 128 --deadline-ms 30000

The experiment sub-commands print the same rows/series the paper reports.
``train`` fits the end-to-end pipeline on the simulated corpus and writes an
atomic, checksummed :class:`~repro.persistence.PipelineBundle` artifact;
``tag`` and ``serve`` load such an artifact through the
:mod:`repro.serve` model registry and answer tagging requests through the
microbatching queue (one JSON object per input line on stdout for ``tag``).
With ``--input``, ``tag`` instead streams a whole recipe-corpus JSONL through
the :mod:`repro.corpus` substrate — budget-bounded chunks, optionally across
``--workers`` processes — writing one structured recipe per output line.
``index build`` turns that structured JSONL into a checksummed inverted-index
artifact — or, with ``--shards N``, into a shard manifest whose N
hash-partitioned shards are built in parallel across ``--workers`` processes;
``index update`` appends new recipes as a delta shard and ``index merge``
compacts a manifest into fewer shards or one monolithic artifact.  Every
index writer takes ``--format v1|v2`` (v2 is the compact binary posting
format: ~10x smaller, mmap'd lazy-decode loads); ``index migrate`` rewrites
existing artifacts between formats (shard-by-shard for a manifest, under a
bumped generation) and ``index inspect`` prints an artifact's shape —
format, generation, per-shard size — without decoding postings.  ``index
query`` answers boolean entity queries from either artifact kind (or, with
``--scan``, by brute-forcing the JSONL — same results, corpus-scan cost);
``--rank``/``-k`` order matches by BM25 score from artifact metadata,
``--facet FIELD`` adds per-term match-count aggregations, and ``--workers``
fans per-shard evaluation of a manifest across threads;
``serve --index`` additionally exposes the index (monolithic or manifest) on
``POST /v1/search``, hot-swappable through ``POST /v1/reload``.  ``serve
--async`` swaps the threaded front end for the asyncio event-loop server:
keep-alive + pipelined connections, per-endpoint admission control
(``--max-inflight`` concurrent requests, ``--queue-depth`` waiters, excess
load shed with ``429 + Retry-After``, ``--deadline-ms`` per-request budget)
and chunked NDJSON streaming (``"stream": true``) for corpus-sized tag and
search responses.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable, Sequence

from repro.experiments import (
    ablations,
    conclusions,
    crossval,
    fig2,
    fig3,
    fig4,
    fig5,
    table1,
    table3,
    table4,
    table5,
)

__all__ = ["main", "build_parser", "EXPERIMENTS"]


def _run_ablations(*, scale: str, seed: int) -> str:
    parts = [
        ablations.render_sampling(ablations.run_sampling_ablation(scale=scale, seed=seed)),
        ablations.render_model_family(ablations.run_model_family_ablation(scale=scale, seed=seed)),
        ablations.render_threshold(ablations.run_threshold_ablation(scale=scale, seed=seed)),
        ablations.render_cluster_count(ablations.run_cluster_count_ablation(scale=scale, seed=seed)),
        ablations.render_preprocessing(ablations.run_preprocessing_ablation(scale=scale, seed=seed)),
    ]
    return "\n\n".join(parts)


#: Experiment name -> callable(scale, seed) -> rendered report.
EXPERIMENTS: dict[str, Callable[..., str]] = {
    "table1": lambda *, scale, seed: table1.render(table1.run(scale=scale, seed=seed)),
    "table3": lambda *, scale, seed: table3.render(table3.run(scale=scale, seed=seed)),
    "table4": lambda *, scale, seed: table4.render(table4.run(scale=scale, seed=seed)),
    "table5": lambda *, scale, seed: table5.render(table5.run(scale=scale, seed=seed)),
    "fig2": lambda *, scale, seed: fig2.render(fig2.run(scale=scale, seed=seed)),
    "fig3": lambda *, scale, seed: fig3.render(fig3.run(scale=scale, seed=seed)),
    "fig4": lambda *, scale, seed: fig4.render(fig4.run(scale=scale, seed=seed)),
    "fig5": lambda *, scale, seed: fig5.render(fig5.run(scale=scale, seed=seed)),
    "conclusions": lambda *, scale, seed: conclusions.render(conclusions.run(scale=scale, seed=seed)),
    "crossval": lambda *, scale, seed: crossval.render(crossval.run(scale=scale, seed=seed)),
    "ablations": _run_ablations,
}

_SCALES = ("tiny", "small", "medium", "large")


def _add_corpus_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="small",
        choices=_SCALES,
        help="corpus scale preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro-recipes",
        description=(
            "Reproduce the tables and figures of 'A Named Entity Based Approach "
            "to Model Recipes', or train and serve the pipeline."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True, metavar="command")

    for name in [*EXPERIMENTS, "all"]:
        help_text = (
            "run every experiment" if name == "all" else f"regenerate the paper's {name}"
        )
        experiment = subparsers.add_parser(name, help=help_text)
        _add_corpus_options(experiment)
        experiment.set_defaults(experiment=name, handler=_cmd_experiments)

    train = subparsers.add_parser(
        "train", help="fit the full pipeline and save a serving bundle artifact"
    )
    _add_corpus_options(train)
    train.add_argument(
        "--family",
        default="perceptron",
        choices=("crf", "perceptron", "hmm"),
        help="sequence-model family for both NER models (default: perceptron)",
    )
    train.add_argument(
        "--output", required=True, help="path the bundle artifact is written to"
    )
    train.set_defaults(handler=_cmd_train)

    tag = subparsers.add_parser(
        "tag",
        help=(
            "tag recipe lines with a saved bundle (JSON per line on stdout), or "
            "structure a whole recipe-corpus JSONL with --input"
        ),
    )
    tag.add_argument("--bundle", required=True, help="bundle artifact to load")
    tag.add_argument(
        "--section",
        default=None,
        choices=("ingredient", "instruction"),
        help=(
            "which recipe section the lines belong to (default: instruction; "
            "line mode only — --input structures both sections)"
        ),
    )
    tag.add_argument(
        "--no-dictionary",
        action="store_true",
        help="skip the frequency-dictionary filter on instruction predictions",
    )
    tag.add_argument(
        "--input",
        help=(
            "recipe-corpus JSONL to structure end-to-end; streamed in "
            "budget-bounded chunks, one structured recipe per output line"
        ),
    )
    tag.add_argument(
        "--output",
        help="write structured-recipe JSONL here instead of stdout (with --input)",
    )
    tag.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for --input structuring (default: 1, in-process)",
    )
    tag.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="max recipes per work chunk for --input (default: budget-bounded only)",
    )
    tag.add_argument(
        "lines",
        nargs="*",
        help="recipe lines to tag (reads one line per stdin row when omitted)",
    )
    tag.set_defaults(handler=_cmd_tag)

    index = subparsers.add_parser(
        "index",
        help="build or query an inverted index over structured-recipe JSONL",
    )
    index_commands = index.add_subparsers(
        dest="index_command", required=True, metavar="subcommand"
    )

    index_build = index_commands.add_parser(
        "build", help="stream a structured-recipe JSONL into an index artifact"
    )
    index_build.add_argument(
        "--input",
        required=True,
        help="structured-recipe JSONL to index (output of `tag --input`)",
    )
    index_build.add_argument(
        "--output", required=True, help="path the index artifact is written to"
    )
    index_build.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "partition into N hash shards and write a shard manifest (shard "
            "artifacts land next to it) instead of one monolithic index"
        ),
    )
    index_build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for parallel shard builds with --shards (default: 1)",
    )
    index_build.add_argument(
        "--format",
        choices=("v1", "v2"),
        default="v1",
        help=(
            "artifact representation: v1 (JSON postings) or v2 (compact "
            "binary posting format; ~10x smaller, mmap'd lazy-decode loads)"
        ),
    )
    index_build.set_defaults(handler=_cmd_index_build)

    index_merge = index_commands.add_parser(
        "merge",
        help=(
            "compact a shard manifest: fold base + delta shards into fewer "
            "shards (--shards) or one monolithic index artifact"
        ),
    )
    index_merge.add_argument(
        "--manifest", required=True, help="shard manifest built by `index build --shards`"
    )
    index_merge.add_argument(
        "--output",
        required=True,
        help=(
            "destination: a new shard manifest with --shards, otherwise a "
            "monolithic index artifact"
        ),
    )
    index_merge.add_argument(
        "--shards",
        type=int,
        default=None,
        help="target base shard count (omit to produce one monolithic index)",
    )
    index_merge.add_argument(
        "--format",
        choices=("v1", "v2"),
        default="v1",
        help="artifact representation of everything written (default: v1)",
    )
    index_merge.set_defaults(handler=_cmd_index_merge)

    index_update = index_commands.add_parser(
        "update",
        help=(
            "append a structured-recipe JSONL as a delta shard (incremental "
            "update; base shards untouched, manifest generation bumped)"
        ),
    )
    index_update.add_argument(
        "--manifest", required=True, help="shard manifest to update in place"
    )
    index_update.add_argument(
        "--input", required=True, help="structured-recipe JSONL to append"
    )
    index_update.add_argument(
        "--format",
        choices=("v1", "v2"),
        default="v1",
        help="artifact representation of the new delta shard (default: v1)",
    )
    index_update.set_defaults(handler=_cmd_index_update)

    index_migrate = index_commands.add_parser(
        "migrate",
        help=(
            "rewrite index artifacts into another representation: a shard "
            "manifest migrates shard-by-shard under a bumped generation "
            "(in place, atomically), a monolithic artifact is re-saved"
        ),
    )
    index_migrate_target = index_migrate.add_mutually_exclusive_group(required=True)
    index_migrate_target.add_argument(
        "--manifest", help="shard manifest to migrate in place"
    )
    index_migrate_target.add_argument(
        "--index", dest="index_path", help="monolithic index artifact to convert"
    )
    index_migrate.add_argument(
        "--format",
        choices=("v1", "v2"),
        default="v2",
        help="target artifact representation (default: v2)",
    )
    index_migrate.add_argument(
        "--output",
        help=(
            "destination for a converted monolithic artifact "
            "(default: rewrite --index in place; ignored with --manifest)"
        ),
    )
    index_migrate.set_defaults(handler=_cmd_index_migrate)

    index_delete = index_commands.add_parser(
        "delete",
        help=(
            "tombstone documents in a shard manifest (masked from queries "
            "immediately, dropped for good at the next merge)"
        ),
    )
    index_delete.add_argument(
        "--manifest", required=True, help="shard manifest to delete from"
    )
    index_delete.add_argument(
        "--recipe-id",
        dest="recipe_ids",
        action="append",
        metavar="ID",
        help="tombstone every live document with this recipe id (repeatable)",
    )
    index_delete.add_argument(
        "--doc-id",
        dest="doc_ids",
        action="append",
        type=int,
        metavar="N",
        help="tombstone this global doc id (repeatable)",
    )
    index_delete.set_defaults(handler=_cmd_index_delete)

    index_inspect = index_commands.add_parser(
        "inspect",
        help=(
            "print an artifact's shape without decoding postings: format/kind, "
            "generation, documents, and per-shard size/format for a manifest"
        ),
    )
    index_inspect.add_argument(
        "--index",
        dest="index_path",
        required=True,
        help="index artifact or shard manifest to inspect",
    )
    index_inspect.set_defaults(handler=_cmd_index_inspect)

    index_query = index_commands.add_parser(
        "query", help="evaluate an entity query (JSON object per match on stdout)"
    )
    index_query.add_argument(
        "--index",
        dest="index_path",
        help="index artifact or shard manifest built by `index build`",
    )
    index_query.add_argument(
        "--scan",
        help=(
            "brute-force a structured-recipe JSONL instead of using an index "
            "(same results, corpus-scan cost)"
        ),
    )
    index_query.add_argument(
        "--limit", type=int, default=None, help="return at most this many matches"
    )
    index_query.add_argument(
        "--rank",
        action="store_true",
        help="order matches by BM25 score (each printed match carries 'score')",
    )
    index_query.add_argument(
        "-k",
        "--top-k",
        dest="top_k",
        type=int,
        default=None,
        metavar="K",
        help="ranked top-k shorthand: implies --rank and caps the results at K",
    )
    index_query.add_argument(
        "--facet",
        dest="facets",
        action="append",
        metavar="FIELD",
        help=(
            "aggregate per-term match counts for FIELD over all matches "
            "(repeatable; printed as one trailing JSON object on stdout)"
        ),
    )
    index_query.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "threads fanning per-shard evaluation of a manifest "
            "(default: 1, serial)"
        ),
    )
    index_query.add_argument(
        "query",
        help=(
            "boolean entity query, e.g. "
            "'ingredient:tomato AND process:saute AND NOT ingredient:garlic'"
        ),
    )
    index_query.set_defaults(handler=_cmd_index_query)

    ingest = subparsers.add_parser(
        "ingest",
        help="continuously ingest a growing JSONL feed into a shard manifest",
    )
    ingest_commands = ingest.add_subparsers(
        dest="ingest_command", required=True, metavar="subcommand"
    )
    ingest_run = ingest_commands.add_parser(
        "run",
        help=(
            "tail a feed file or *.jsonl drop directory into delta shards "
            "with background tiered compaction (Ctrl-C to stop)"
        ),
    )
    ingest_run.add_argument(
        "--manifest", required=True, help="shard manifest to append to (must exist)"
    )
    ingest_run.add_argument(
        "--watch",
        required=True,
        help=(
            "JSONL feed to tail: recipe documents or {\"_delete\": id} "
            "directives, one JSON object per line; a directory tails every "
            "*.jsonl inside it"
        ),
    )
    ingest_run.add_argument(
        "--shards",
        type=int,
        default=None,
        help="base shard count compaction rewrites to (default: keep current)",
    )
    ingest_run.add_argument(
        "--format",
        choices=("v1", "v2"),
        default="v1",
        help="representation for delta and compacted shards (default: v1)",
    )
    ingest_run.add_argument(
        "--max-deltas",
        type=int,
        default=4,
        help="compact once this many delta shards accumulated (default: 4)",
    )
    ingest_run.add_argument(
        "--max-tombstone-fraction",
        type=float,
        default=0.25,
        help=(
            "compact once tombstoned docs exceed this corpus fraction "
            "(default: 0.25; negative disables)"
        ),
    )
    ingest_run.add_argument(
        "--poll-interval-ms",
        type=float,
        default=200.0,
        help="sleep between feed polls in milliseconds (default: 200)",
    )
    ingest_run.add_argument(
        "--once",
        action="store_true",
        help=(
            "drain what is pending now (poll + compact until quiescent), "
            "print stats, and exit instead of running forever"
        ),
    )
    ingest_run.set_defaults(handler=_cmd_ingest_run)

    serve = subparsers.add_parser(
        "serve", help="serve a saved bundle over HTTP with microbatched decoding"
    )
    serve.add_argument("--bundle", required=True, help="bundle artifact to serve")
    serve.add_argument(
        "--index",
        help=(
            "recipe-index artifact or shard manifest to serve on "
            "POST /v1/search (optional)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080, help="bind port (default: 8080)")
    serve.add_argument(
        "--max-batch", type=int, default=256, help="flush threshold / per-kernel sentence cap"
    )
    serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="microbatch coalescing window in milliseconds (default: 2)",
    )
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help=(
            "serve from the asyncio event-loop front end (keep-alive + "
            "pipelining, admission control, NDJSON streaming) instead of the "
            "threaded fallback server"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="async only: concurrent requests admitted per endpoint (default: 64)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        help=(
            "async only: requests allowed to wait for a slot per endpoint; "
            "excess load is shed with 429 + Retry-After (default: 128)"
        ),
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=30_000.0,
        help=(
            "async only: total per-request budget in milliseconds, queue wait "
            "included; expired requests are abandoned (default: 30000, 0 disables)"
        ),
    )
    serve.add_argument(
        "--index-auto-reload",
        dest="index_auto_reload_s",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "hot-swap the index when its artifact changes on disk, checking "
            "at most every SECONDS per search (how the server follows an "
            "ingest daemon republishing the manifest; default: off)"
        ),
    )
    serve.add_argument(
        "--ingest-watch",
        metavar="PATH",
        help=(
            "also run an in-process ingest daemon tailing PATH (feed file or "
            "*.jsonl drop directory) into the --index shard manifest; "
            "implies --index-auto-reload 1.0 unless set explicitly"
        ),
    )
    serve.add_argument(
        "--no-dictionary",
        action="store_true",
        help="skip the frequency-dictionary filter on instruction predictions",
    )
    serve.add_argument("--verbose", action="store_true", help="log every HTTP request")
    serve.set_defaults(handler=_cmd_serve)

    chartag = subparsers.add_parser(
        "chartag",
        help=(
            "the character-level tagging workload: train, tag, serve and "
            "index through the same engine and serving stack"
        ),
    )
    chartag_commands = chartag.add_subparsers(
        dest="chartag_command", required=True, metavar="subcommand"
    )

    chartag_train = chartag_commands.add_parser(
        "train", help="train a char tagger on {text, tags} JSONL examples"
    )
    chartag_train.add_argument(
        "--input",
        required=True,
        help=(
            "training JSONL: {\"text\", \"tags\"} per line with one tag per "
            "character (`synth chartag` emits this shape)"
        ),
    )
    chartag_train.add_argument(
        "--output", required=True, help="path the chartag bundle artifact is written to"
    )
    chartag_train.add_argument(
        "--family",
        default="perceptron",
        choices=("crf", "perceptron", "hmm"),
        help="sequence-model family (default: perceptron)",
    )
    chartag_train.add_argument(
        "--seed", type=int, default=0, help="training seed (default: 0)"
    )
    chartag_train.set_defaults(handler=_cmd_chartag_train)

    chartag_tag = chartag_commands.add_parser(
        "tag",
        help=(
            "tag lines character-by-character with a saved chartag bundle "
            "(JSON per line on stdout), or structure a raw-document JSONL "
            "with --input"
        ),
    )
    chartag_tag.add_argument(
        "--bundle", required=True, help="chartag bundle artifact to load"
    )
    chartag_tag.add_argument(
        "--input",
        help=(
            "raw-document JSONL ({\"doc_id\", \"title\", \"lines\"} per line) "
            "to structure into recipe JSONL"
        ),
    )
    chartag_tag.add_argument(
        "--output",
        help="write structured-recipe JSONL here instead of stdout (with --input)",
    )
    chartag_tag.add_argument(
        "lines",
        nargs="*",
        help="text lines to tag (reads one line per stdin row when omitted)",
    )
    chartag_tag.set_defaults(handler=_cmd_chartag_tag)

    chartag_serve = chartag_commands.add_parser(
        "serve",
        help=(
            "serve a chartag bundle over HTTP: POST /v1/tag with "
            "{\"section\": \"char\"} through the shared microbatched stack"
        ),
    )
    chartag_serve.add_argument(
        "--bundle", required=True, help="chartag bundle artifact to serve"
    )
    chartag_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    chartag_serve.add_argument(
        "--port", type=int, default=8080, help="bind port (default: 8080)"
    )
    chartag_serve.add_argument(
        "--max-batch", type=int, default=256, help="flush threshold per batch decode"
    )
    chartag_serve.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        help="microbatch coalescing window in milliseconds (default: 2)",
    )
    chartag_serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    chartag_serve.set_defaults(handler=_cmd_chartag_serve)

    chartag_index = chartag_commands.add_parser(
        "index",
        help=(
            "structure a raw-document JSONL with a chartag bundle and build "
            "a recipe index from the result in one pass"
        ),
    )
    chartag_index.add_argument(
        "--bundle", required=True, help="chartag bundle artifact to structure with"
    )
    chartag_index.add_argument(
        "--input", required=True, help="raw-document JSONL to structure and index"
    )
    chartag_index.add_argument(
        "--output", required=True, help="path the index artifact is written to"
    )
    chartag_index.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition into N hash shards and write a shard manifest",
    )
    chartag_index.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for parallel shard builds with --shards (default: 1)",
    )
    chartag_index.add_argument(
        "--format",
        choices=("v1", "v2"),
        default="v1",
        help="artifact representation (default: v1)",
    )
    chartag_index.set_defaults(handler=_cmd_chartag_index)

    synth = subparsers.add_parser(
        "synth",
        help=(
            "generate seeded synthetic corpora offline (same seed + params "
            "= byte-identical output)"
        ),
    )
    synth_commands = synth.add_subparsers(
        dest="synth_command", required=True, metavar="subcommand"
    )

    synth_corpus = synth_commands.add_parser(
        "corpus",
        help=(
            "write a structured-recipe corpus JSONL (feeds `index build` and "
            "`ingest run` unchanged), optionally with a ground-truth manifest"
        ),
    )
    _add_synth_options(synth_corpus)
    synth_corpus.add_argument(
        "--output", required=True, help="corpus JSONL destination"
    )
    synth_corpus.add_argument(
        "--manifest",
        help=(
            "also write the ground-truth manifest artifact here (RNG "
            "contract, params, corpus sha256, per-field document frequencies)"
        ),
    )
    synth_corpus.add_argument(
        "--raw",
        help=(
            "also write the raw-document view ({\"doc_id\", \"title\", "
            "\"lines\"} JSONL) here — the input `chartag tag/index` structure"
        ),
    )
    synth_corpus.set_defaults(handler=_cmd_synth_corpus)

    synth_chartag = synth_commands.add_parser(
        "chartag",
        help=(
            "write char-level training examples ({\"text\", \"tags\", "
            "\"kind\"} JSONL) with gold tags aligned per character"
        ),
    )
    _add_synth_options(synth_chartag)
    synth_chartag.add_argument(
        "--output", required=True, help="training-example JSONL destination"
    )
    synth_chartag.add_argument(
        "--limit",
        type=int,
        default=None,
        help="stop after this many examples (default: every line of every doc)",
    )
    synth_chartag.set_defaults(handler=_cmd_synth_chartag)

    return parser


def _add_synth_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="corpus seed (default: 0)")
    parser.add_argument(
        "--docs", type=int, default=1000, help="documents to generate (default: 1000)"
    )
    parser.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="entity-popularity skew; 0 = uniform (default: 1.1)",
    )


# ------------------------------------------------------------------- commands


def _cmd_experiments(arguments: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 78 + "\n")
        print(f"## {name}")
        report = EXPERIMENTS[name](scale=arguments.scale, seed=arguments.seed)
        print(report)
    return 0


def _cmd_train(arguments: argparse.Namespace) -> int:
    from repro.experiments.common import build_corpora, train_modeler
    from repro.serve import ModelRegistry

    corpus = build_corpora(scale=arguments.scale, seed=arguments.seed).combined
    modeler = train_modeler(corpus, seed=arguments.seed, model_family=arguments.family)
    modeler.save_bundle(arguments.output)
    record = ModelRegistry().load(arguments.output)
    print(json.dumps({"saved": record.describe()}))
    return 0


def _make_service(arguments: argparse.Namespace, **service_options):
    from repro.serve import ModelRegistry, TaggingService

    registry = ModelRegistry()
    registry.load(arguments.bundle)
    return TaggingService(
        registry,
        apply_dictionary=not arguments.no_dictionary,
        **service_options,
    )


def _cmd_tag(arguments: argparse.Namespace) -> int:
    if arguments.input:
        return _cmd_tag_corpus(arguments)
    lines = arguments.lines or [line.rstrip("\n") for line in sys.stdin]
    with _make_service(arguments, max_delay_s=0.0) as service:
        for result in service.tag_lines(arguments.section or "instruction", lines):
            print(json.dumps(result))
    return 0


def _cmd_tag_corpus(arguments: argparse.Namespace) -> int:
    """Stream a recipe-corpus JSONL through the structuring pipeline."""
    from repro.corpus import CorpusReader, StructuredRecipeSink, plan_corpus_chunks, structure_chunks

    if arguments.lines:
        print("tag: --input and positional lines are mutually exclusive", file=sys.stderr)
        return 2
    if arguments.section:
        print(
            "tag: --section applies to line mode only; --input structures both sections",
            file=sys.stderr,
        )
        return 2
    chunks = plan_corpus_chunks(
        CorpusReader(arguments.input), max_recipes=arguments.chunk_size
    )
    # Workers (or the in-process fallback) load the bundle artifact themselves.
    structured = structure_chunks(
        chunks,
        workers=arguments.workers,
        bundle_path=arguments.bundle,
        apply_dictionary=not arguments.no_dictionary,
    )
    with StructuredRecipeSink(arguments.output or sys.stdout) as sink:
        for recipe in structured:
            sink.write(recipe)
        count = sink.count
    print(
        f"structured {count} recipes from {arguments.input} "
        f"({arguments.workers} worker{'s' if arguments.workers != 1 else ''})",
        file=sys.stderr,
    )
    return 0


def _cmd_index_build(arguments: argparse.Namespace) -> int:
    from repro.index import IndexBuilder, build_sharded_index

    if arguments.shards is None and arguments.workers != 1:
        print(
            "index build: --workers applies to sharded builds only; add --shards N",
            file=sys.stderr,
        )
        return 2
    if arguments.shards is not None:
        manifest = build_sharded_index(
            arguments.input,
            arguments.output,
            num_shards=arguments.shards,
            workers=arguments.workers,
            format=arguments.format,
        )
        print(json.dumps({"indexed": manifest.describe(), "output": arguments.output}))
        return 0
    index = IndexBuilder.build_from_jsonl(arguments.input)
    index.save(arguments.output, kind=arguments.format)
    # Report the format that landed on disk, not the in-memory builder's.
    summary = {**index.stats(), "format": arguments.format}
    print(json.dumps({"indexed": summary, "output": arguments.output}))
    return 0


def _cmd_index_merge(arguments: argparse.Namespace) -> int:
    from repro.index import ShardedRecipeIndex, merge_shards

    sharded = ShardedRecipeIndex.load(arguments.manifest)
    merged = merge_shards(
        sharded,
        num_shards=arguments.shards,
        manifest_path=arguments.output,
        format=arguments.format,
    )
    if isinstance(merged, ShardedRecipeIndex):
        summary = merged.manifest.describe()
    else:
        summary = merged.stats()
    print(json.dumps({"merged": summary, "output": arguments.output}))
    return 0


def _cmd_index_update(arguments: argparse.Namespace) -> int:
    from repro.index import add_jsonl

    manifest = add_jsonl(arguments.manifest, arguments.input, format=arguments.format)
    print(json.dumps({"updated": manifest.describe(), "manifest": arguments.manifest}))
    return 0


def _cmd_index_delete(arguments: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.index import delete_docs

    if not arguments.recipe_ids and not arguments.doc_ids:
        raise ConfigurationError(
            "index delete needs at least one --recipe-id or --doc-id"
        )
    manifest = delete_docs(
        arguments.manifest,
        doc_ids=arguments.doc_ids,
        recipe_ids=arguments.recipe_ids,
    )
    print(json.dumps({"deleted": manifest.describe(), "manifest": arguments.manifest}))
    return 0


def _cmd_ingest_run(arguments: argparse.Namespace) -> int:
    import time

    from repro.ingest import IngestDaemon, TieredCompactionPolicy

    policy = TieredCompactionPolicy(
        max_deltas=arguments.max_deltas,
        max_tombstone_fraction=(
            arguments.max_tombstone_fraction
            if arguments.max_tombstone_fraction >= 0
            else None
        ),
    )
    daemon = IngestDaemon(
        arguments.manifest,
        arguments.watch,
        policy=policy,
        num_shards=arguments.shards,
        format=arguments.format,
        poll_interval_s=arguments.poll_interval_ms / 1000.0,
    )
    if arguments.once:
        while daemon.run_once() is not None:
            pass
        print(json.dumps({"ingest": daemon.stats(), "manifest": arguments.manifest}))
        return 0
    daemon.start()
    try:
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()
    print(json.dumps({"ingest": daemon.stats(), "manifest": arguments.manifest}))
    return 0


def _cmd_index_migrate(arguments: argparse.Namespace) -> int:
    from repro.index import RecipeIndex, migrate_manifest

    if arguments.manifest:
        manifest = migrate_manifest(arguments.manifest, format=arguments.format)
        formats: dict[str, int] = {}
        for entry in manifest.entries:
            formats[entry.format] = formats.get(entry.format, 0) + 1
        print(
            json.dumps(
                {
                    "migrated": manifest.describe(),
                    "shard_formats": formats,
                    "manifest": arguments.manifest,
                }
            )
        )
        return 0
    index = RecipeIndex.load(arguments.index_path)
    output = arguments.output or arguments.index_path
    index.save(output, kind=arguments.format)
    print(json.dumps({"migrated": {"format": arguments.format}, "output": str(output)}))
    return 0


def _cmd_index_inspect(arguments: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.index import (
        MANIFEST_ARTIFACT_FORMAT,
        ShardManifest,
        load_index_path,
    )

    path = Path(arguments.index_path)
    try:
        manifest = ShardManifest.load(path)
    except Exception:
        manifest = None
    if manifest is not None:
        shards = []
        for entry in manifest.entries:
            shard_path = path.parent / entry.path
            if not shard_path.exists() or entry.kind == "tombstone":
                # Tombstone shards carry doc ids, not postings — doc stats
                # do not apply.
                has_stats = None
            elif entry.format == "v1":
                # v1 carries full postings, so doc stats are always
                # computable (the loader derives them lazily in memory).
                has_stats = True
            else:
                has_stats = load_index_path(shard_path).has_doc_stats
            shards.append(
                {
                    "path": entry.path,
                    "kind": entry.kind,
                    "format": entry.format,
                    "docs": entry.docs,
                    "doc_ids": list(entry.doc_ids) if entry.doc_ids else None,
                    "size_bytes": (
                        shard_path.stat().st_size if shard_path.exists() else None
                    ),
                    "sha256": entry.sha256,
                    "doc_stats": has_stats,
                }
            )
        print(
            json.dumps(
                {
                    "artifact": MANIFEST_ARTIFACT_FORMAT,
                    **manifest.describe(),
                    "size_bytes": path.stat().st_size,
                    "shards": shards,
                    # v2 shards written before the doc-stats section existed:
                    # ranked search over them falls back to decoding postings,
                    # so mixed-generation manifests are worth flagging.
                    "doc_stats_missing": [
                        shard["path"] for shard in shards if shard["doc_stats"] is False
                    ],
                }
            )
        )
        return 0
    index = load_index_path(path)
    print(
        json.dumps(
            {
                "artifact": "recipe-index",
                **index.stats(),
                "size_bytes": path.stat().st_size,
                "doc_stats": _doc_stats_summary(index),
            }
        )
    )
    return 0


def _doc_stats_summary(index) -> dict:
    """The doc-stats view `index inspect` prints for a monolithic artifact.

    A v2 artifact written before the doc-stats section existed reports
    ``{"present": false}`` instead of decoding every posting to rebuild it.
    """
    if not index.has_doc_stats:
        return {"present": False}
    documents = index.doc_count
    total = index.total_occurrences()
    return {
        "present": True,
        "documents": documents,
        "total_occurrences": total,
        "mean_doc_length": (total / documents) if documents else 0.0,
        "term_table_size": sum(index.stats()["terms"].values()),
    }


def _cmd_index_query(arguments: argparse.Namespace) -> int:
    from repro.errors import QueryError
    from repro.index import QueryEngine, load_index_path, scan_structured_jsonl

    if bool(arguments.index_path) == bool(arguments.scan):
        print(
            "index query: exactly one of --index or --scan is required",
            file=sys.stderr,
        )
        return 2
    rank = arguments.rank or arguments.top_k is not None
    limit = arguments.top_k if arguments.top_k is not None else arguments.limit
    facets = None
    try:
        if arguments.index_path:
            # Accepts a monolithic index artifact or a shard manifest; the
            # engine answers identically from either.
            engine = QueryEngine(
                load_index_path(arguments.index_path), workers=arguments.workers
            )
            total, matches = engine.search(arguments.query, limit=limit, rank=rank)
            if arguments.facets:
                facets = engine.facets(arguments.query, arguments.facets)
        elif rank:
            # The scoring oracle over a corpus scan: same scores, same order
            # as --index mode, corpus-scan cost.
            from repro.corpus.sink import iter_structured_jsonl
            from repro.index import rank_recipes

            total, matches = rank_recipes(
                iter_structured_jsonl(arguments.scan), arguments.query, limit=limit
            )
        else:
            # Scan the whole file so the reported total matches --index mode;
            # --limit only truncates what is printed.
            matches = scan_structured_jsonl(arguments.scan, arguments.query)
            total = len(matches)
            if limit is not None:
                matches = matches[: max(limit, 0)]
        if arguments.facets and not arguments.index_path:
            facets = _scan_facets(arguments.scan, arguments.query, arguments.facets)
    except QueryError as error:
        print(f"index query: {error}", file=sys.stderr)
        return 2
    for match in matches:
        print(json.dumps(match.to_dict()))
    if facets is not None:
        print(
            json.dumps(
                {
                    "facets": {
                        field: [{"term": term, "count": count} for term, count in rows]
                        for field, rows in facets.items()
                    }
                }
            )
        )
    source = arguments.index_path or arguments.scan
    print(f"{total} match{'es' if total != 1 else ''} in {source}", file=sys.stderr)
    return 0


def _scan_facets(
    path: str, query: str, fields: list[str]
) -> dict[str, list[tuple[str, int]]]:
    """Brute-force facet aggregation over a structured JSONL (scan parity)."""
    from collections import Counter

    from repro.corpus.sink import iter_structured_jsonl
    from repro.errors import QueryError
    from repro.index import FIELDS, extract_entities, matches_recipe, parse_query

    counters: dict[str, Counter] = {}
    for field in fields:
        if field not in FIELDS:
            raise QueryError(f"unknown facet field {field!r}; expected one of {FIELDS}")
        counters[field] = Counter()
    node = parse_query(query)
    for recipe in iter_structured_jsonl(path):
        if not matches_recipe(node, recipe):
            continue
        entities = extract_entities(recipe)
        for field, counter in counters.items():
            counter.update(entities[field].keys())
    return {
        field: sorted(counter.items(), key=lambda row: (-row[1], row[0]))[:10]
        for field, counter in counters.items()
    }


def _print_serving_banner(arguments, service, search, port: int, front_end: str) -> None:
    record = service.model_record()
    print(
        f"serving bundle {record.path} (sha256 {record.sha256[:12]}, "
        f"generation {record.generation}) on http://{arguments.host}:{port} "
        f"({front_end} front end)"
    )
    if search is not None:
        index_record = search.record()
        shards = getattr(index_record.bundle, "shard_count", 1)
        print(
            f"serving index {index_record.path} (sha256 {index_record.sha256[:12]}, "
            f"{index_record.bundle.doc_count} recipes, "
            f"{shards} shard{'s' if shards != 1 else ''}) on POST /v1/search"
        )


def _cmd_serve(arguments: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.serve import SearchService, make_server

    service = _make_service(
        arguments,
        max_batch=arguments.max_batch,
        max_delay_s=arguments.max_delay_ms / 1000.0,
    )
    auto_reload_s = arguments.index_auto_reload_s
    if arguments.ingest_watch and auto_reload_s is None:
        auto_reload_s = 1.0  # an ingesting server must follow its own writes
    search = (
        SearchService.from_artifact(
            arguments.index, auto_reload_interval_s=auto_reload_s
        )
        if arguments.index
        else None
    )
    ingest = None
    if arguments.ingest_watch:
        if not arguments.index:
            raise ConfigurationError(
                "--ingest-watch needs --index pointing at the shard manifest "
                "to ingest into"
            )
        from repro.ingest import IngestDaemon

        ingest = IngestDaemon(arguments.index, arguments.ingest_watch)
        ingest.start()
    try:
        if arguments.use_async:
            return _serve_async(arguments, service, search, ingest)
        server = make_server(
            service,
            search=search,
            host=arguments.host,
            port=arguments.port,
            ingest=ingest,
            verbose=arguments.verbose,
        )
        _print_serving_banner(
            arguments, service, search, server.server_address[1], "threaded"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            server.server_close()
            service.close()
        return 0
    finally:
        if ingest is not None:
            ingest.stop()


def _serve_async(arguments: argparse.Namespace, service, search, ingest=None) -> int:
    import asyncio

    from repro.serve import AdmissionController, AdmissionPolicy, AsyncTaggingServer

    policy = AdmissionPolicy(
        max_inflight=arguments.max_inflight,
        queue_depth=arguments.queue_depth,
        deadline_s=(
            arguments.deadline_ms / 1000.0 if arguments.deadline_ms > 0 else None
        ),
    )
    server = AsyncTaggingServer(
        service,
        search=search,
        host=arguments.host,
        port=arguments.port,
        admission=AdmissionController(policy),
        ingest=ingest,
        verbose=arguments.verbose,
    )

    async def run() -> None:
        await server.start()
        _print_serving_banner(arguments, service, search, server.port, "async")
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


# ------------------------------------------------------------ char workload


def _chartag_registry(bundle_path: str):
    from repro.chartag import CharTagBundle
    from repro.serve import ModelRegistry

    registry = ModelRegistry(
        loader=lambda text, source: CharTagBundle.loads(text, source=source)
    )
    registry.load(bundle_path)
    return registry


def _cmd_chartag_train(arguments: argparse.Namespace) -> int:
    from repro.chartag import CharTagBundle, CharTagger
    from repro.corpus.reader import iter_jsonl

    texts: list[str] = []
    tag_sequences: list[list[str]] = []
    for example in iter_jsonl(arguments.input, json.loads, what="chartag example"):
        texts.append(example["text"])
        tag_sequences.append(example["tags"])
    tagger = CharTagger(family=arguments.family, seed=arguments.seed)
    tagger.train(texts, tag_sequences)
    CharTagBundle(tagger).save(arguments.output)
    record = _chartag_registry(arguments.output).get("default")
    print(json.dumps({"saved": record.describe(), "examples": len(texts)}))
    return 0


def _cmd_chartag_tag(arguments: argparse.Namespace) -> int:
    from repro.chartag import CharTagBundle, structure_raw_jsonl

    if arguments.input:
        if arguments.lines:
            print(
                "chartag tag: --input and positional lines are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        tagger = CharTagBundle.load(arguments.bundle).tagger
        count = structure_raw_jsonl(
            tagger, arguments.input, arguments.output or "/dev/stdout"
        )
        print(
            f"structured {count} documents from {arguments.input}", file=sys.stderr
        )
        return 0
    from repro.chartag import CHAR_SECTION, CharTagService

    lines = arguments.lines or [line.rstrip("\n") for line in sys.stdin]
    registry = _chartag_registry(arguments.bundle)
    with CharTagService(registry, max_delay_s=0.0) as service:
        for result in service.tag_lines(CHAR_SECTION, lines):
            print(json.dumps(result))
    return 0


def _cmd_chartag_serve(arguments: argparse.Namespace) -> int:
    from repro.chartag import CharTagService
    from repro.serve import make_server

    registry = _chartag_registry(arguments.bundle)
    service = CharTagService(
        registry,
        max_batch=arguments.max_batch,
        max_delay_s=arguments.max_delay_ms / 1000.0,
    )
    server = make_server(
        service,
        host=arguments.host,
        port=arguments.port,
        verbose=arguments.verbose,
    )
    record = service.model_record()
    print(
        f"serving chartag bundle {record.path} (sha256 {record.sha256[:12]}, "
        f"generation {record.generation}) on "
        f"http://{arguments.host}:{server.server_address[1]} "
        '(section "char")'
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def _cmd_chartag_index(arguments: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.chartag import CharTagBundle, structure_raw_jsonl
    from repro.index import IndexBuilder, build_sharded_index

    tagger = CharTagBundle.load(arguments.bundle).tagger
    output = Path(arguments.output)
    with tempfile.TemporaryDirectory(dir=output.parent) as staging:
        structured = Path(staging) / "structured.jsonl"
        count = structure_raw_jsonl(tagger, arguments.input, structured)
        if arguments.shards is not None:
            manifest = build_sharded_index(
                structured,
                output,
                num_shards=arguments.shards,
                workers=arguments.workers,
                format=arguments.format,
            )
            summary = manifest.describe()
        else:
            index = IndexBuilder.build_from_jsonl(structured)
            index.save(output, kind=arguments.format)
            summary = {**index.stats(), "format": arguments.format}
    print(
        json.dumps(
            {"structured": count, "indexed": summary, "output": arguments.output}
        )
    )
    return 0


# ---------------------------------------------------------- synthetic corpus


def _synth_params(arguments: argparse.Namespace):
    from repro.corpus.synth import SynthParams

    return SynthParams(
        seed=arguments.seed, docs=arguments.docs, zipf_s=arguments.zipf_s
    )


def _cmd_synth_corpus(arguments: argparse.Namespace) -> int:
    from repro.corpus.synth import write_raw_documents, write_synth_corpus

    summary = write_synth_corpus(
        _synth_params(arguments),
        arguments.output,
        manifest_path=arguments.manifest,
    )
    if arguments.raw:
        write_raw_documents(_synth_params(arguments), arguments.raw)
        summary["raw"] = arguments.raw
    print(json.dumps(summary))
    return 0


def _cmd_synth_chartag(arguments: argparse.Namespace) -> int:
    from repro.corpus.synth import write_chartag_examples

    count = write_chartag_examples(
        _synth_params(arguments), arguments.output, limit=arguments.limit
    )
    print(json.dumps({"examples": count, "path": arguments.output}))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the console script and ``python -m repro``."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
