"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro table1 --scale small --seed 0
    python -m repro table4 --scale medium
    python -m repro all

Every sub-command prints the same rows/series the paper reports (plus the
paper's own numbers for side-by-side comparison where applicable).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.experiments import (
    ablations,
    conclusions,
    crossval,
    fig2,
    fig3,
    fig4,
    fig5,
    table1,
    table3,
    table4,
    table5,
)

__all__ = ["main", "build_parser", "EXPERIMENTS"]


def _run_ablations(*, scale: str, seed: int) -> str:
    parts = [
        ablations.render_sampling(ablations.run_sampling_ablation(scale=scale, seed=seed)),
        ablations.render_model_family(ablations.run_model_family_ablation(scale=scale, seed=seed)),
        ablations.render_threshold(ablations.run_threshold_ablation(scale=scale, seed=seed)),
        ablations.render_cluster_count(ablations.run_cluster_count_ablation(scale=scale, seed=seed)),
        ablations.render_preprocessing(ablations.run_preprocessing_ablation(scale=scale, seed=seed)),
    ]
    return "\n\n".join(parts)


#: Experiment name -> callable(scale, seed) -> rendered report.
EXPERIMENTS: dict[str, Callable[..., str]] = {
    "table1": lambda *, scale, seed: table1.render(table1.run(scale=scale, seed=seed)),
    "table3": lambda *, scale, seed: table3.render(table3.run(scale=scale, seed=seed)),
    "table4": lambda *, scale, seed: table4.render(table4.run(scale=scale, seed=seed)),
    "table5": lambda *, scale, seed: table5.render(table5.run(scale=scale, seed=seed)),
    "fig2": lambda *, scale, seed: fig2.render(fig2.run(scale=scale, seed=seed)),
    "fig3": lambda *, scale, seed: fig3.render(fig3.run(scale=scale, seed=seed)),
    "fig4": lambda *, scale, seed: fig4.render(fig4.run(scale=scale, seed=seed)),
    "fig5": lambda *, scale, seed: fig5.render(fig5.run(scale=scale, seed=seed)),
    "conclusions": lambda *, scale, seed: conclusions.render(conclusions.run(scale=scale, seed=seed)),
    "crossval": lambda *, scale, seed: crossval.render(crossval.run(scale=scale, seed=seed)),
    "ablations": _run_ablations,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro-recipes",
        description="Reproduce the tables and figures of 'A Named Entity Based Approach to Model Recipes'.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS.keys(), "all"],
        help="which paper artefact to regenerate ('all' runs every experiment)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium", "large"),
        help="corpus scale preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the console script and ``python -m repro``."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    names = list(EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 78 + "\n")
        print(f"## {name}")
        report = EXPERIMENTS[name](scale=arguments.scale, seed=arguments.seed)
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
