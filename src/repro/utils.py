"""Small shared utilities: seeding, iteration helpers and validation.

The paper's pipeline has several stochastic stages (corpus generation,
K-Means initialisation, training-set sampling, perceptron shuffling).  To keep
every experiment reproducible, randomness is always drawn from explicitly
constructed generators created by :func:`make_rng` / :func:`make_py_rng`.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

import numpy as np

from repro.errors import ConfigurationError, DataError

T = TypeVar("T")

#: Seed used by experiments when the caller does not supply one.
DEFAULT_SEED = 20200425  # arXiv submission date of the paper (2020-04-25).


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a NumPy random generator for ``seed``.

    ``None`` maps to :data:`DEFAULT_SEED` so that library defaults stay
    deterministic; passing an existing generator returns it unchanged, which
    lets pipelines share one stream across stages.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def make_py_rng(seed: int | str | tuple | random.Random | None = None) -> random.Random:
    """Return a ``random.Random`` instance for ``seed`` (see :func:`make_rng`).

    Tuples are accepted as composite seeds (e.g. ``(base_seed, source, index)``)
    and folded into a stable string, which ``random.Random`` hashes
    deterministically.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    if isinstance(seed, tuple):
        seed = "|".join(str(part) for part in seed)
    return random.Random(seed)


def batched(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield consecutive slices of ``items`` with at most ``size`` elements."""
    if size <= 0:
        raise ConfigurationError(f"batch size must be positive, got {size}")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def pairwise(items: Iterable[T]) -> Iterator[tuple[T, T]]:
    """Yield overlapping pairs ``(items[i], items[i + 1])``."""
    return itertools.pairwise(items)


def require_equal_lengths(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise :class:`DataError` unless the two sequences have equal length."""
    if len(a) != len(b):
        raise DataError(
            f"{name_a} and {name_b} must have the same length "
            f"(got {len(a)} and {len(b)})"
        )


def require_nonempty(name: str, value: Sequence) -> None:
    """Raise :class:`DataError` if ``value`` is empty."""
    if len(value) == 0:
        raise DataError(f"{name} must not be empty")


def argmax(scores: Sequence[float]) -> int:
    """Index of the maximum value, first occurrence wins (pure-Python helper)."""
    require_nonempty("scores", scores)
    best_index = 0
    best_value = scores[0]
    for index, value in enumerate(scores):
        if value > best_value:
            best_index = index
            best_value = value
    return best_index


def normalize_counts(counts: dict[T, float]) -> dict[T, float]:
    """Return ``counts`` scaled so the values sum to one (empty dict passes through)."""
    total = float(sum(counts.values()))
    if total <= 0.0:
        return dict(counts)
    return {key: value / total for key, value in counts.items()}


def flatten(nested: Iterable[Iterable[T]]) -> list[T]:
    """Flatten one level of nesting into a list."""
    return [item for inner in nested for item in inner]


def stable_unique(items: Iterable[T]) -> list[T]:
    """Deduplicate ``items`` preserving first-seen order."""
    seen: set[T] = set()
    result: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result


def as_float_array(vectors: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
    """Convert ``vectors`` to a 2-D ``float64`` array, validating the shape."""
    array = np.asarray(vectors, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise DataError(f"expected a 2-D array of vectors, got ndim={array.ndim}")
    return array


__all__ = [
    "DEFAULT_SEED",
    "argmax",
    "as_float_array",
    "batched",
    "flatten",
    "make_py_rng",
    "make_rng",
    "normalize_counts",
    "pairwise",
    "require_equal_lengths",
    "require_nonempty",
    "stable_unique",
]
