"""End-to-end recipe modelling pipeline (the paper's full system).

:class:`RecipeModeler` ties every stage together:

1. train the POS tagger on the corpus (gold POS tags from the simulator,
   standing in for the pre-trained Stanford POS Twitter model);
2. embed unique ingredient phrases as POS vectors, cluster them and select a
   cluster-stratified training set (Sections II.D/E);
3. train the ingredient-section NER model on the selected phrases;
4. train the instruction-section NER model on annotated steps (the paper
   annotates the longest instructions of 40 cuisines);
5. build the frequency-thresholded technique/utensil dictionaries;
6. expose :meth:`model_recipe` / :meth:`model_text`, which turn raw recipe
   text into a :class:`~repro.core.recipe_model.StructuredRecipe`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.core.ingredient_pipeline import IngredientPipeline
from repro.core.instruction_pipeline import InstructionPipeline
from repro.core.recipe_model import StructuredRecipe
from repro.core.relation_extraction import RelationExtractor
from repro.core.selection import ClusteringSelection, TrainingSetSelector
from repro.corpus.executor import structure_chunks
from repro.corpus.planner import (
    DEFAULT_MAX_SENTENCES,
    DEFAULT_MAX_TOKENS,
    RecipeWork,
    plan_corpus_chunks,
)
from repro.corpus.structurer import RecipeStructurer
from repro.data.models import AnnotatedInstruction, AnnotatedPhrase, Recipe
from repro.data.recipedb import RecipeDB
from repro.errors import ConfigurationError, NotFittedError
from repro.pos.tagger import PerceptronPosTagger
from repro.pos.vectorizer import PosBagOfWordsVectorizer
from repro.text.tokenizer import tokenize

__all__ = ["RecipeModeler", "RecipeModelerConfig"]


@dataclass(frozen=True)
class RecipeModelerConfig:
    """Configuration of the end-to-end pipeline.

    Attributes:
        model_family: Sequence-labeller family for both NER models.
        n_clusters: K-Means cluster count for training-set selection
            (``None`` = choose with the elbow criterion; paper uses 23).
        train_fraction / test_fraction: Per-cluster sampling fractions.
        instruction_training_steps: Number of annotated instruction steps
            used to train the instruction NER model.
        pos_training_sentences: Cap on sentences used to train the POS tagger.
        process_threshold / utensil_threshold: Dictionary thresholds
            (``None`` = scale the paper's 47/10 to the corpus size).
        apply_dictionary: Filter instruction NER output through the dictionaries.
        seed: Master seed.
    """

    model_family: str = "perceptron"
    n_clusters: int | None = 23
    train_fraction: float = 0.25
    test_fraction: float = 0.10
    instruction_training_steps: int = 250
    pos_training_sentences: int = 1500
    process_threshold: int | None = None
    utensil_threshold: int | None = None
    apply_dictionary: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.instruction_training_steps < 1:
            raise ConfigurationError("instruction_training_steps must be positive")
        if self.pos_training_sentences < 1:
            raise ConfigurationError("pos_training_sentences must be positive")


@dataclass
class _FittedComponents:
    """Internal bundle of everything :meth:`RecipeModeler.fit` produces."""

    pos_tagger: PerceptronPosTagger
    vectorizer: PosBagOfWordsVectorizer
    selection: ClusteringSelection
    ingredient_pipeline: IngredientPipeline
    instruction_pipeline: InstructionPipeline
    relation_extractor: RelationExtractor
    held_out_phrases: list[AnnotatedPhrase] = field(default_factory=list)
    held_out_steps: list[AnnotatedInstruction] = field(default_factory=list)


class RecipeModeler:
    """The full recipe-structuring system of the paper."""

    def __init__(self, config: RecipeModelerConfig | None = None) -> None:
        self.config = config or RecipeModelerConfig()
        self._components: _FittedComponents | None = None

    # ------------------------------------------------------------------ fit

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._components is not None

    def fit(self, corpus: RecipeDB) -> "RecipeModeler":
        """Train every stage of the pipeline on ``corpus``."""
        config = self.config
        phrases = corpus.ingredient_phrases()
        steps = corpus.instruction_steps()

        pos_tagger = self._train_pos_tagger(phrases, steps)
        vectorizer = PosBagOfWordsVectorizer(pos_tagger)

        selector = TrainingSetSelector(
            vectorizer,
            n_clusters=config.n_clusters,
            train_fraction=config.train_fraction,
            test_fraction=config.test_fraction,
            seed=config.seed,
        )
        selection = selector.select(phrases)

        ingredient_pipeline = IngredientPipeline(
            model_family=config.model_family, seed=config.seed
        )
        ingredient_pipeline.train(selection.train)

        instruction_pipeline = InstructionPipeline(
            model_family=config.model_family, seed=config.seed
        )
        training_steps, held_out_steps = self._select_instruction_steps(steps)
        instruction_pipeline.train(training_steps)
        instruction_pipeline.build_dictionaries(
            [list(step.tokens) for step in steps],
            process_threshold=config.process_threshold,
            utensil_threshold=config.utensil_threshold,
        )

        relation_extractor = RelationExtractor(pos_tagger)

        self._components = _FittedComponents(
            pos_tagger=pos_tagger,
            vectorizer=vectorizer,
            selection=selection,
            ingredient_pipeline=ingredient_pipeline,
            instruction_pipeline=instruction_pipeline,
            relation_extractor=relation_extractor,
            held_out_phrases=selection.test,
            held_out_steps=held_out_steps,
        )
        return self

    def _train_pos_tagger(
        self, phrases: list[AnnotatedPhrase], steps: list[AnnotatedInstruction]
    ) -> PerceptronPosTagger:
        cap = self.config.pos_training_sentences
        sentences: list[list[str]] = []
        tags: list[list[str]] = []
        for phrase in phrases[: cap // 2]:
            sentences.append(list(phrase.tokens))
            tags.append(list(phrase.pos_tags))
        for step in steps[: cap - len(sentences)]:
            sentences.append(list(step.tokens))
            tags.append(list(step.pos_tags))
        tagger = PerceptronPosTagger()
        tagger.train(sentences, tags, iterations=5, seed=self.config.seed)
        return tagger

    def _select_instruction_steps(
        self, steps: list[AnnotatedInstruction]
    ) -> tuple[list[AnnotatedInstruction], list[AnnotatedInstruction]]:
        """Pick the training steps: longest steps first (paper's heuristic).

        ``steps`` is the list :meth:`fit` already materialised; re-reading it
        from the corpus would re-tokenize every instruction.
        """
        ranked = sorted(steps, key=lambda step: len(step.tokens), reverse=True)
        budget = min(self.config.instruction_training_steps, max(1, len(ranked) // 2))
        training = ranked[:budget]
        held_out = ranked[budget : budget * 2] or ranked[:budget]
        return training, held_out

    # ------------------------------------------------------------- modelling

    @property
    def components(self) -> _FittedComponents:
        """Fitted sub-components (raises before :meth:`fit`)."""
        if self._components is None:
            raise NotFittedError("RecipeModeler used before fit()")
        return self._components

    def model_recipe(self, recipe: Recipe) -> StructuredRecipe:
        """Structure a simulated recipe (uses only its raw text)."""
        return self.model_text(
            recipe_id=recipe.recipe_id,
            title=recipe.title,
            ingredient_lines=[phrase.text for phrase in recipe.ingredients],
            instruction_lines=[step.text for step in recipe.instructions],
        )

    def model_text(
        self,
        *,
        ingredient_lines: list[str],
        instruction_lines: list[str],
        recipe_id: str = "recipe",
        title: str = "",
    ) -> StructuredRecipe:
        """Structure raw recipe text (the public entry point of the library).

        Every line is tokenised exactly once; all ingredient lines and all
        instruction lines are then tagged in two batched decodes, with
        repeated lines coming out of the models' decode caches.
        """
        work = RecipeWork.from_lines(
            recipe_id=recipe_id,
            title=title,
            ingredient_lines=ingredient_lines,
            instruction_lines=instruction_lines,
        )
        return RecipeStructurer.from_modeler(self).structure(work)

    def model_corpus_iter(
        self,
        recipes: Iterable[Recipe],
        *,
        workers: int = 1,
        chunk_recipes: int | None = None,
        max_sentences: int = DEFAULT_MAX_SENTENCES,
        max_tokens: int = DEFAULT_MAX_TOKENS,
    ) -> Iterator[StructuredRecipe]:
        """Stream structured recipes for a (possibly huge) recipe stream.

        The stream is cut into chunks bounded by ``chunk_recipes`` recipes,
        ``max_sentences`` sentences and ``max_tokens`` padded tokens; each
        chunk is structured with two batched decodes and yielded in input
        order, so peak memory is bounded by the chunk budgets rather than
        the corpus size.  With ``workers > 1`` the chunks are structured
        concurrently by a process pool whose workers each load the pipeline
        bundle once; the output is element-wise identical to ``workers=1``,
        which in turn is element-wise identical to calling
        :meth:`model_recipe` per recipe.
        """
        chunks = plan_corpus_chunks(
            recipes,
            max_recipes=chunk_recipes,
            max_sentences=max_sentences,
            max_tokens=max_tokens,
        )
        if workers <= 1:
            yield from structure_chunks(
                chunks, structurer=RecipeStructurer.from_modeler(self)
            )
        else:
            yield from structure_chunks(
                chunks,
                workers=workers,
                bundle_payload=self.to_bundle().to_payload(),
                apply_dictionary=self.config.apply_dictionary,
            )

    def model_corpus(self, corpus: RecipeDB, *, workers: int = 1) -> list[StructuredRecipe]:
        """Structure every recipe of ``corpus`` (materialised convenience).

        Thin wrapper over :meth:`model_corpus_iter`; use the iterator (with a
        :class:`~repro.corpus.sink.StructuredRecipeSink`) when the corpus or
        its structured form should never be fully resident.
        """
        return list(self.model_corpus_iter(corpus, workers=workers))

    # ------------------------------------------------------------ persistence

    def to_bundle(self):
        """Package the fitted tag-time components as a :class:`PipelineBundle`."""
        from repro.persistence import PipelineBundle  # local import: persistence imports this module

        return PipelineBundle.from_modeler(self)

    def save_bundle(self, path) -> None:
        """Atomically save the fitted tag-time components to ``path``.

        The resulting artifact is the serving currency of :mod:`repro.serve`:
        ``PipelineBundle.load`` (or a :class:`~repro.serve.ModelRegistry`)
        restores a drop-in tagger without retraining.
        """
        self.to_bundle().save(path)

    # --------------------------------------------------------------- parsing

    def tag_ingredient_phrase(self, phrase: str) -> list[tuple[str, str]]:
        """(token, tag) pairs for one ingredient phrase (Table I helper)."""
        return self.components.ingredient_pipeline.tag_phrase(phrase)

    def parse_instruction(self, text: str):
        """Dependency tree of an instruction (Fig. 3 helper)."""
        tokens = tokenize(text)
        return self.components.relation_extractor.parse(tokens)
