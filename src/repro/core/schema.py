"""The recipe entity schema (Table II of the paper).

Two tag inventories are defined:

* the **ingredient section** tags -- the seven attributes of an ingredient
  phrase (NAME, STATE, UNIT, QUANTITY, SIZE, TEMP, DRY/FRESH), plus the
  outside tag ``O``;
* the **instruction section** tags -- PROCESS (cooking technique), UTENSIL
  and INGREDIENT, plus ``O``.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.ner.encoding import OUTSIDE_TAG

__all__ = [
    "ENTITY_TAGS",
    "INGREDIENT_TAGS",
    "INGREDIENT_TAG_DESCRIPTIONS",
    "INSTRUCTION_TAGS",
    "INSTRUCTION_TAG_DESCRIPTIONS",
    "validate_ingredient_tag",
    "validate_instruction_tag",
]

#: The seven ingredient attributes of Table II (order follows the paper).
INGREDIENT_TAGS: tuple[str, ...] = (
    "NAME",
    "STATE",
    "UNIT",
    "QUANTITY",
    "SIZE",
    "TEMP",
    "DRY/FRESH",
)

#: Significance and examples for each ingredient tag, mirroring Table II.
INGREDIENT_TAG_DESCRIPTIONS: dict[str, tuple[str, str]] = {
    "NAME": ("Name of Ingredient", "salt, pepper"),
    "STATE": ("Processing State of Ingredient", "ground, thawed"),
    "UNIT": ("Measuring unit(s)", "gram, cup"),
    "QUANTITY": ("Quantity associated with the unit(s)", "1, 1 1/2, 2-4"),
    "SIZE": ("Portion sizes mentioned", "small, large"),
    "TEMP": ("Temperature applied prior to cooking", "hot, frozen"),
    "DRY/FRESH": ("Fresh otherwise as mentioned", "dry, fresh"),
}

#: Entities recognised inside instruction steps (Section III.A).
INSTRUCTION_TAGS: tuple[str, ...] = ("PROCESS", "INGREDIENT", "UTENSIL")

#: Significance and examples for each instruction tag.
INSTRUCTION_TAG_DESCRIPTIONS: dict[str, tuple[str, str]] = {
    "PROCESS": ("Cooking technique applied in the step", "boil, preheat"),
    "INGREDIENT": ("Ingredient the step operates on", "water, potato"),
    "UTENSIL": ("Utensil involved in the step", "pot, oven"),
}

#: All entity tags across both sections (without the outside tag).
ENTITY_TAGS: tuple[str, ...] = INGREDIENT_TAGS + INSTRUCTION_TAGS


def validate_ingredient_tag(tag: str) -> str:
    """Return ``tag`` if it is an ingredient-section tag or ``O``; raise otherwise."""
    if tag in INGREDIENT_TAGS or tag == OUTSIDE_TAG:
        return tag
    raise SchemaError(f"unknown ingredient-section tag: {tag!r}")


def validate_instruction_tag(tag: str) -> str:
    """Return ``tag`` if it is an instruction-section tag or ``O``; raise otherwise."""
    if tag in INSTRUCTION_TAGS or tag == OUTSIDE_TAG:
        return tag
    raise SchemaError(f"unknown instruction-section tag: {tag!r}")
