"""Frequency-thresholded dictionaries of cooking techniques and utensils.

Section III.A of the paper: after tagging the instruction sections of
RecipeDB with the instruction NER model, the predicted PROCESS and UTENSIL
strings are aggregated into frequency dictionaries and filtered with
threshold frequencies (47 for techniques, 10 for utensils) "removing most of
the inconsistencies" -- i.e. rare spurious predictions are dropped, and the
surviving entries form the closed vocabularies the relation extractor
trusts.

Because the reproduction corpus is much smaller than 118k recipes, the
thresholds are expressed both as absolute counts (the paper's numbers) and
as an optional fraction of the corpus size, so experiments can scale them.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.ner.model import NerModel
from repro.text.lemmatizer import Lemmatizer

__all__ = ["EntityDictionary", "build_dictionaries", "PAPER_PROCESS_THRESHOLD", "PAPER_UTENSIL_THRESHOLD"]

#: Frequency thresholds used by the paper on the 118k-recipe corpus.
PAPER_PROCESS_THRESHOLD = 47
PAPER_UTENSIL_THRESHOLD = 10


@dataclass(frozen=True)
class EntityDictionary:
    """A frequency dictionary of entity strings with a cut-off threshold.

    Attributes:
        label: The entity type the dictionary covers ("PROCESS" / "UTENSIL").
        counts: Observed frequency of every candidate string.
        threshold: Minimum frequency for an entry to be accepted.
    """

    label: str
    counts: dict[str, int]
    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {self.threshold}")

    @property
    def entries(self) -> frozenset[str]:
        """Accepted entries (frequency >= threshold)."""
        return frozenset(
            entry for entry, count in self.counts.items() if count >= self.threshold
        )

    @property
    def rejected(self) -> frozenset[str]:
        """Candidates filtered out by the threshold."""
        return frozenset(
            entry for entry, count in self.counts.items() if count < self.threshold
        )

    def __contains__(self, entry: str) -> bool:
        return entry in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def accepts(self, entry: str) -> bool:
        """Whether ``entry`` survives the frequency filter."""
        return entry in self.entries

    def with_threshold(self, threshold: int) -> "EntityDictionary":
        """Same counts, different threshold (used by the threshold sweep)."""
        return EntityDictionary(label=self.label, counts=dict(self.counts), threshold=threshold)

    def most_common(self, n: int | None = None) -> list[tuple[str, int]]:
        """Accepted entries sorted by frequency (descending)."""
        accepted = [(entry, count) for entry, count in self.counts.items() if count >= self.threshold]
        accepted.sort(key=lambda item: (-item[1], item[0]))
        return accepted if n is None else accepted[:n]


def _collect_counts(
    ner: NerModel,
    token_sequences: Sequence[Sequence[str]],
    lemmatizer: Lemmatizer,
) -> tuple[Counter, Counter]:
    """Tag every sequence and count predicted PROCESS / UTENSIL strings."""
    process_counts: Counter = Counter()
    utensil_counts: Counter = Counter()
    tag_sequences = ner.tag_batch(token_sequences)
    for tokens, tags in zip(token_sequences, tag_sequences):
        index = 0
        while index < len(tokens):
            tag = tags[index]
            if tag not in ("PROCESS", "UTENSIL"):
                index += 1
                continue
            start = index
            while index < len(tokens) and tags[index] == tag:
                index += 1
            surface = " ".join(token.lower() for token in tokens[start:index])
            if tag == "PROCESS":
                process_counts[lemmatizer.lemmatize(surface, pos="verb")] += 1
            else:
                utensil_counts[lemmatizer.lemmatize(surface, pos="noun")] += 1
    return process_counts, utensil_counts


def build_dictionaries(
    ner: NerModel,
    token_sequences: Sequence[Sequence[str]],
    *,
    process_threshold: int | None = None,
    utensil_threshold: int | None = None,
    relative_thresholds: bool = True,
    lemmatizer: Lemmatizer | None = None,
) -> tuple[EntityDictionary, EntityDictionary]:
    """Build the technique and utensil dictionaries from NER output.

    Args:
        ner: Trained instruction NER model.
        token_sequences: Tokenised instruction steps of the corpus.
        process_threshold: Absolute frequency threshold for techniques;
            defaults to the paper's 47 scaled to the corpus size when
            ``relative_thresholds`` is true.
        utensil_threshold: Absolute threshold for utensils (paper: 10).
        relative_thresholds: Scale the paper's thresholds by
            ``len(token_sequences) / 174_932`` (the paper's instruction-step
            count) when explicit thresholds are not given.
        lemmatizer: Lemmatizer used to canonicalise dictionary entries.
    """
    lemmatizer = lemmatizer or Lemmatizer()
    process_counts, utensil_counts = _collect_counts(ner, token_sequences, lemmatizer)

    if process_threshold is None:
        process_threshold = _scaled_threshold(
            PAPER_PROCESS_THRESHOLD, len(token_sequences), relative_thresholds
        )
    if utensil_threshold is None:
        utensil_threshold = _scaled_threshold(
            PAPER_UTENSIL_THRESHOLD, len(token_sequences), relative_thresholds
        )

    return (
        EntityDictionary(label="PROCESS", counts=dict(process_counts), threshold=process_threshold),
        EntityDictionary(label="UTENSIL", counts=dict(utensil_counts), threshold=utensil_threshold),
    )


def _scaled_threshold(paper_threshold: int, n_steps: int, relative: bool) -> int:
    """Scale a paper threshold to the reproduction corpus size (min 2)."""
    if not relative:
        return paper_threshold
    paper_steps = 174_932
    scaled = round(paper_threshold * n_steps / paper_steps)
    return max(2, scaled)


def dictionary_from_counts(label: str, counts: Iterable[tuple[str, int]], threshold: int) -> EntityDictionary:
    """Build a dictionary directly from (entry, count) pairs (testing helper)."""
    return EntityDictionary(label=label, counts=dict(counts), threshold=threshold)
