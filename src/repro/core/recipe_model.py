"""The structured recipe representation (Fig. 1 of the paper).

A :class:`StructuredRecipe` holds the two modelled sections:

* the **ingredients section** as a list of :class:`IngredientRecord` objects,
  each carrying the seven attributes of Table II;
* the **instructions section** as a temporally ordered list of
  :class:`InstructionEvent` objects, each holding the many-to-many
  :class:`RelationTuple` relations between cooking processes, ingredients
  and utensils.

Every class serialises to plain JSON (``to_dict``/``from_dict`` and, on the
recipe, ``to_json``/``from_json``) so a structured corpus can be streamed to
and from JSONL by :mod:`repro.corpus.sink`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import DataError

__all__ = [
    "IngredientRecord",
    "InstructionEvent",
    "RelationTuple",
    "StructuredRecipe",
]


@dataclass(frozen=True)
class IngredientRecord:
    """Structured view of one ingredient phrase (Table I row).

    Attributes:
        phrase: The original ingredient phrase.
        name: Canonical ingredient name ("puff pastry").
        state: Processing state ("thawed"), empty when absent.
        quantity: Quantity string ("1", "2-3", "1 1/2"), empty when absent.
        unit: Measurement unit ("sheet"), empty when absent.
        temperature: Temperature attribute ("frozen"), empty when absent.
        dry_fresh: Dryness/freshness attribute ("fresh"), empty when absent.
        size: Portion size ("medium"), empty when absent.
        quantity_value: Numeric interpretation of ``quantity`` when parseable.
    """

    phrase: str
    name: str = ""
    state: str = ""
    quantity: str = ""
    unit: str = ""
    temperature: str = ""
    dry_fresh: str = ""
    size: str = ""
    quantity_value: float | None = None

    def as_row(self) -> dict[str, str]:
        """Table I style row: attribute -> value (empty string when absent)."""
        return {
            "Ingredient Phrase": self.phrase,
            "Name": self.name,
            "State": self.state,
            "Quantity": self.quantity,
            "Unit": self.unit,
            "Temperature": self.temperature,
            "Dry/Fresh": self.dry_fresh,
            "Size": self.size,
        }

    @property
    def attributes(self) -> dict[str, str]:
        """Non-empty attributes of the record (excluding the phrase itself)."""
        row = self.as_row()
        row.pop("Ingredient Phrase")
        return {key: value for key, value in row.items() if value}

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "phrase": self.phrase,
            "name": self.name,
            "state": self.state,
            "quantity": self.quantity,
            "unit": self.unit,
            "temperature": self.temperature,
            "dry_fresh": self.dry_fresh,
            "size": self.size,
            "quantity_value": self.quantity_value,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IngredientRecord":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            phrase=payload["phrase"],
            name=payload.get("name", ""),
            state=payload.get("state", ""),
            quantity=payload.get("quantity", ""),
            unit=payload.get("unit", ""),
            temperature=payload.get("temperature", ""),
            dry_fresh=payload.get("dry_fresh", ""),
            size=payload.get("size", ""),
            quantity_value=payload.get("quantity_value"),
        )


@dataclass(frozen=True)
class RelationTuple:
    """A many-to-many relation between one process and its entities.

    The paper models each cooking event as a process applied simultaneously
    to any number of ingredients and utensils ("fry" -> {potatoes, olive oil}
    x {pan}).  Not every relation has both entity kinds.
    """

    process: str
    ingredients: tuple[str, ...] = ()
    utensils: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.process:
            raise DataError("a relation tuple requires a process")

    @property
    def arity(self) -> int:
        """Total number of related entities."""
        return len(self.ingredients) + len(self.utensils)

    @property
    def entities(self) -> tuple[str, ...]:
        """All related entities, ingredients first."""
        return self.ingredients + self.utensils

    def as_pairs(self) -> list[tuple[str, str]]:
        """Expand to (process, entity) pairs -- the unit the paper counts.

        A relation with no entities still yields one pair with an empty
        entity so that bare processes ("stir well") remain visible.
        """
        if not self.entities:
            return [(self.process, "")]
        return [(self.process, entity) for entity in self.entities]

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "process": self.process,
            "ingredients": list(self.ingredients),
            "utensils": list(self.utensils),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RelationTuple":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            process=payload["process"],
            ingredients=tuple(payload.get("ingredients", ())),
            utensils=tuple(payload.get("utensils", ())),
        )


@dataclass(frozen=True)
class InstructionEvent:
    """One instruction step and the relations extracted from it.

    Attributes:
        step_index: Zero-based temporal position in the recipe.
        text: The raw instruction text.
        processes: Cooking techniques detected in the step, in textual order.
        ingredients: Ingredients detected in the step.
        utensils: Utensils detected in the step.
        relations: Many-to-many relation tuples, in textual order.
    """

    step_index: int
    text: str
    processes: tuple[str, ...] = ()
    ingredients: tuple[str, ...] = ()
    utensils: tuple[str, ...] = ()
    relations: tuple[RelationTuple, ...] = ()

    def __post_init__(self) -> None:
        if self.step_index < 0:
            raise DataError("step_index must be non-negative")

    @property
    def relation_count(self) -> int:
        """Number of (process, entity) pairs in the step (the paper's unit)."""
        return sum(len(relation.as_pairs()) for relation in self.relations)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "step_index": self.step_index,
            "text": self.text,
            "processes": list(self.processes),
            "ingredients": list(self.ingredients),
            "utensils": list(self.utensils),
            "relations": [relation.to_dict() for relation in self.relations],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InstructionEvent":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            step_index=payload["step_index"],
            text=payload["text"],
            processes=tuple(payload.get("processes", ())),
            ingredients=tuple(payload.get("ingredients", ())),
            utensils=tuple(payload.get("utensils", ())),
            relations=tuple(
                RelationTuple.from_dict(item) for item in payload.get("relations", ())
            ),
        )


@dataclass(frozen=True)
class StructuredRecipe:
    """The full structured recipe of Fig. 1.

    Attributes:
        recipe_id: Identifier of the source recipe.
        title: Recipe title.
        ingredients: Structured ingredient records (ingredients section).
        events: Temporally ordered instruction events (instructions section).
    """

    recipe_id: str
    title: str
    ingredients: tuple[IngredientRecord, ...] = ()
    events: tuple[InstructionEvent, ...] = ()

    @property
    def ingredient_names(self) -> list[str]:
        """Canonical ingredient names present in the ingredients section."""
        return [record.name for record in self.ingredients if record.name]

    @property
    def processes(self) -> list[str]:
        """Cooking processes in temporal order (duplicates preserved)."""
        return [process for event in self.events for process in event.processes]

    @property
    def utensils(self) -> list[str]:
        """Utensils referenced anywhere in the instructions."""
        seen: list[str] = []
        for event in self.events:
            for utensil in event.utensils:
                if utensil not in seen:
                    seen.append(utensil)
        return seen

    @property
    def relations(self) -> list[RelationTuple]:
        """All relation tuples across every event, in temporal order."""
        return [relation for event in self.events for relation in event.relations]

    def temporal_sequence(self) -> list[tuple[int, RelationTuple]]:
        """(step index, relation) pairs in the order they occur."""
        return [
            (event.step_index, relation)
            for event in self.events
            for relation in event.relations
        ]

    def summary(self) -> dict[str, float]:
        """Aggregate statistics used by reports and tests."""
        relation_counts = [event.relation_count for event in self.events]
        return {
            "ingredients": len(self.ingredients),
            "events": len(self.events),
            "relations": sum(relation_counts),
            "mean_relations_per_event": (
                sum(relation_counts) / len(relation_counts) if relation_counts else 0.0
            ),
        }

    # ---------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "recipe_id": self.recipe_id,
            "title": self.title,
            "ingredients": [record.to_dict() for record in self.ingredients],
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StructuredRecipe":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            recipe_id=payload["recipe_id"],
            title=payload.get("title", ""),
            ingredients=tuple(
                IngredientRecord.from_dict(item) for item in payload.get("ingredients", ())
            ),
            events=tuple(
                InstructionEvent.from_dict(item) for item in payload.get("events", ())
            ),
        )

    def to_json(self) -> str:
        """Single-line JSON rendering (used by the JSONL sinks)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "StructuredRecipe":
        """Parse a structured recipe from its JSON rendering."""
        return cls.from_dict(json.loads(line))
