"""Instruction-section pipeline: NER + dictionary filtering (Section III.A).

The pipeline trains a second NER model over {PROCESS, INGREDIENT, UTENSIL, O}
on annotated instruction steps, applies it to new steps, and (optionally)
filters the predicted processes and utensils through the frequency
dictionaries of :mod:`repro.core.dictionary` -- exactly the two-stage filter
the paper uses to remove spurious predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.dictionary import EntityDictionary, build_dictionaries
from repro.core.schema import validate_instruction_tag
from repro.data.models import AnnotatedInstruction
from repro.errors import DataError, NotFittedError
from repro.ner.features import InstructionFeatureExtractor
from repro.ner.model import NerModel
from repro.text.lemmatizer import Lemmatizer
from repro.text.tokenizer import tokenize

__all__ = ["InstructionEntities", "InstructionPipeline"]


@dataclass(frozen=True)
class InstructionEntities:
    """Entities detected in one instruction step.

    Attributes:
        tokens: Tokenised step.
        tags: Per-token predicted tags (after dictionary filtering when enabled).
        processes: Canonicalised cooking techniques, textual order.
        ingredients: Canonicalised ingredient mentions, textual order.
        utensils: Canonicalised utensil mentions, textual order.
    """

    tokens: tuple[str, ...]
    tags: tuple[str, ...]
    processes: tuple[str, ...]
    ingredients: tuple[str, ...]
    utensils: tuple[str, ...]


class InstructionPipeline:
    """Trains and applies the instruction-section NER model.

    Args:
        model_family: Sequence labeller family ("crf", "perceptron", "hmm").
        seed: Seed for stochastic training.
        **model_options: Extra options forwarded to the sequence model.
    """

    def __init__(self, *, model_family: str = "perceptron", seed: int | None = None, **model_options) -> None:
        self.ner = NerModel(
            InstructionFeatureExtractor(), family=model_family, seed=seed, **model_options
        )
        self._lemmatizer = Lemmatizer()
        self.process_dictionary: EntityDictionary | None = None
        self.utensil_dictionary: EntityDictionary | None = None

    # ----------------------------------------------------------------- train

    @property
    def is_trained(self) -> bool:
        """Whether the underlying NER model is trained."""
        return self.ner.is_trained

    def train(self, steps: Sequence[AnnotatedInstruction]) -> "InstructionPipeline":
        """Train the instruction NER model on annotated steps."""
        if len(steps) == 0:
            raise DataError("cannot train the instruction pipeline on an empty set")
        tokens = [list(step.tokens) for step in steps]
        tags = [list(step.ner_tags) for step in steps]
        for sequence in tags:
            for tag in sequence:
                validate_instruction_tag(tag)
        self.ner.train(tokens, tags)
        return self

    def build_dictionaries(
        self,
        token_sequences: Sequence[Sequence[str]],
        *,
        process_threshold: int | None = None,
        utensil_threshold: int | None = None,
        relative_thresholds: bool = True,
    ) -> tuple[EntityDictionary, EntityDictionary]:
        """Build and attach the frequency dictionaries from corpus NER output."""
        if not self.is_trained:
            raise NotFittedError("train the instruction NER model before building dictionaries")
        processes, utensils = build_dictionaries(
            self.ner,
            token_sequences,
            process_threshold=process_threshold,
            utensil_threshold=utensil_threshold,
            relative_thresholds=relative_thresholds,
            lemmatizer=self._lemmatizer,
        )
        self.process_dictionary = processes
        self.utensil_dictionary = utensils
        return processes, utensils

    # ------------------------------------------------------------------- tag

    def tag_tokens(self, tokens: Sequence[str], *, apply_dictionary: bool = True) -> list[str]:
        """Per-token tags for a tokenised step, dictionary-filtered when available."""
        if not self.is_trained:
            raise NotFittedError("InstructionPipeline used before training")
        tags = self.ner.tag(tokens)
        if not apply_dictionary:
            return tags
        return self._filter_tags(tokens, tags)

    def tag_token_batch(
        self, token_sequences: Sequence[Sequence[str]], *, apply_dictionary: bool = True
    ) -> list[list[str]]:
        """Per-token tags for many tokenised steps (batched decode)."""
        if not self.is_trained:
            raise NotFittedError("InstructionPipeline used before training")
        tag_sequences = self.ner.tag_batch(token_sequences)
        if not apply_dictionary:
            return tag_sequences
        return [
            self._filter_tags(tokens, tags)
            for tokens, tags in zip(token_sequences, tag_sequences)
        ]

    def extract(self, text: str, *, apply_dictionary: bool = True) -> InstructionEntities:
        """Entities for one raw instruction string."""
        return self.extract_batch([text], apply_dictionary=apply_dictionary)[0]

    def extract_batch(
        self, texts: Sequence[str], *, apply_dictionary: bool = True
    ) -> list[InstructionEntities]:
        """Entities for many raw instruction strings, tagged in one batch."""
        token_sequences = [tokenize(text) for text in texts]
        nonempty = [index for index, tokens in enumerate(token_sequences) if tokens]
        tag_sequences = (
            self.tag_token_batch(
                [token_sequences[index] for index in nonempty],
                apply_dictionary=apply_dictionary,
            )
            if nonempty
            else []
        )
        entities = [InstructionEntities((), (), (), (), ()) for _ in texts]
        for index, tags in zip(nonempty, tag_sequences):
            entities[index] = self.entities_from_tagged(token_sequences[index], tags)
        return entities

    def entities_from_tagged(
        self, tokens: Sequence[str], tags: Sequence[str]
    ) -> InstructionEntities:
        """Group (predicted or gold) tagged tokens into canonicalised entity spans."""
        processes: list[str] = []
        ingredients: list[str] = []
        utensils: list[str] = []
        index = 0
        while index < len(tokens):
            tag = tags[index]
            if tag == "O":
                index += 1
                continue
            start = index
            while index < len(tokens) and tags[index] == tag:
                index += 1
            surface = " ".join(token.lower() for token in tokens[start:index])
            if tag == "PROCESS":
                processes.append(self._lemmatizer.lemmatize(surface, pos="verb"))
            elif tag == "INGREDIENT":
                ingredients.append(self._canonical_ingredient(tokens[start:index]))
            elif tag == "UTENSIL":
                utensils.append(self._lemmatizer.lemmatize(surface, pos="noun"))
        return InstructionEntities(
            tokens=tuple(tokens),
            tags=tuple(tags),
            processes=tuple(processes),
            ingredients=tuple(ingredients),
            utensils=tuple(utensils),
        )

    # -------------------------------------------------------------- internals

    def _canonical_ingredient(self, tokens: Sequence[str]) -> str:
        lemmas = [self._lemmatizer.lemmatize(token.lower(), pos="noun") for token in tokens]
        return " ".join(lemmas)

    def _filter_tags(self, tokens: Sequence[str], tags: list[str]) -> list[str]:
        """Downgrade PROCESS/UTENSIL predictions absent from the dictionaries to ``O``."""
        if self.process_dictionary is None and self.utensil_dictionary is None:
            return tags
        filtered = list(tags)
        index = 0
        while index < len(tokens):
            tag = tags[index]
            if tag not in ("PROCESS", "UTENSIL"):
                index += 1
                continue
            start = index
            while index < len(tokens) and tags[index] == tag:
                index += 1
            surface = " ".join(token.lower() for token in tokens[start:index])
            if tag == "PROCESS" and self.process_dictionary is not None:
                lemma = self._lemmatizer.lemmatize(surface, pos="verb")
                if not self.process_dictionary.accepts(lemma):
                    for position in range(start, index):
                        filtered[position] = "O"
            if tag == "UTENSIL" and self.utensil_dictionary is not None:
                lemma = self._lemmatizer.lemmatize(surface, pos="noun")
                if not self.utensil_dictionary.accepts(lemma):
                    for position in range(start, index):
                        filtered[position] = "O"
        return filtered
