"""Ingredient-section pipeline: pre-processing + NER -> structured records.

The pipeline mirrors Section II of the paper:

1. the raw ingredient phrase is tokenised;
2. an NER model (CRF / structured perceptron / HMM) assigns one of the seven
   Table II attributes (or ``O``) to every token;
3. the tagged tokens are assembled into an :class:`IngredientRecord` -- the
   NAME tokens are additionally pre-processed (lower-cased, stop words
   dropped, lemmatised) to obtain the canonical ingredient name so that
   "Tomatoes" and "tomato" collapse onto one name.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.recipe_model import IngredientRecord
from repro.core.schema import INGREDIENT_TAGS, validate_ingredient_tag
from repro.data.models import AnnotatedPhrase
from repro.errors import DataError, NotFittedError
from repro.ner.features import IngredientFeatureExtractor
from repro.ner.model import NerModel
from repro.text.normalize import parse_quantity
from repro.text.preprocess import PreprocessConfig, Preprocessor
from repro.text.tokenizer import tokenize

__all__ = ["IngredientPipeline"]


class IngredientPipeline:
    """Trains and applies the ingredient-section NER model.

    Args:
        model_family: Sequence-labeller family ("crf", "perceptron", "hmm").
        seed: Seed for stochastic training procedures.
        **model_options: Extra options for the underlying model
            (e.g. ``crf_l2``, ``perceptron_iterations``).
    """

    def __init__(self, *, model_family: str = "perceptron", seed: int | None = None, **model_options) -> None:
        self.ner = NerModel(
            IngredientFeatureExtractor(), family=model_family, seed=seed, **model_options
        )
        self._canonicalizer = Preprocessor(PreprocessConfig(instruction_mode=False))

    # ----------------------------------------------------------------- train

    @property
    def is_trained(self) -> bool:
        """Whether the underlying NER model is trained."""
        return self.ner.is_trained

    def train(self, phrases: Sequence[AnnotatedPhrase]) -> "IngredientPipeline":
        """Train the NER model on annotated ingredient phrases."""
        if len(phrases) == 0:
            raise DataError("cannot train the ingredient pipeline on an empty set")
        tokens = [list(phrase.tokens) for phrase in phrases]
        tags = [list(phrase.ner_tags) for phrase in phrases]
        for sequence in tags:
            for tag in sequence:
                validate_ingredient_tag(tag)
        self.ner.train(tokens, tags)
        return self

    def train_from_tokens(
        self,
        token_sequences: Sequence[Sequence[str]],
        tag_sequences: Sequence[Sequence[str]],
    ) -> "IngredientPipeline":
        """Train from already-tokenised phrases (used by the ablations)."""
        self.ner.train(token_sequences, tag_sequences)
        return self

    # ------------------------------------------------------------------- tag

    def tag_tokens(self, tokens: Sequence[str]) -> list[str]:
        """Raw per-token tag predictions for a tokenised phrase."""
        if not self.is_trained:
            raise NotFittedError("IngredientPipeline used before training")
        return self.ner.tag(tokens)

    def tag_token_batch(self, token_sequences: Sequence[Sequence[str]]) -> list[list[str]]:
        """Raw tag predictions for many tokenised phrases (batched decode)."""
        if not self.is_trained:
            raise NotFittedError("IngredientPipeline used before training")
        return self.ner.tag_batch(token_sequences)

    def tag_phrase(self, phrase: str) -> list[tuple[str, str]]:
        """(token, tag) pairs for a raw phrase string."""
        tokens = tokenize(phrase)
        return list(zip(tokens, self.tag_tokens(tokens)))

    # ---------------------------------------------------------------- records

    def extract_record(self, phrase: str) -> IngredientRecord:
        """Full Table I style record for one raw ingredient phrase."""
        return self.extract_records([phrase])[0]

    def extract_records(self, phrases: Sequence[str]) -> list[IngredientRecord]:
        """Records for many raw phrases; all phrases are tagged in one batch."""
        token_sequences = [tokenize(phrase) for phrase in phrases]
        nonempty = [index for index, tokens in enumerate(token_sequences) if tokens]
        tag_sequences = (
            self.tag_token_batch([token_sequences[index] for index in nonempty])
            if nonempty
            else []
        )
        records = [IngredientRecord(phrase=phrase) for phrase in phrases]
        for index, tags in zip(nonempty, tag_sequences):
            records[index] = self.record_from_tagged(
                phrases[index], token_sequences[index], tags
            )
        return records

    def record_from_tagged(
        self, phrase: str, tokens: Sequence[str], tags: Sequence[str]
    ) -> IngredientRecord:
        """Assemble a record from tokens and their (predicted or gold) tags."""
        if len(tokens) != len(tags):
            raise DataError("tokens and tags must align")
        collected: dict[str, list[str]] = {tag: [] for tag in INGREDIENT_TAGS}
        for token, tag in zip(tokens, tags):
            if tag in collected:
                collected[tag].append(token)
        name = self.canonical_name(collected["NAME"])
        quantity = " ".join(collected["QUANTITY"])
        quantity_value = parse_quantity(collected["QUANTITY"][0]) if collected["QUANTITY"] else None
        return IngredientRecord(
            phrase=phrase,
            name=name,
            state=" ".join(collected["STATE"]).lower(),
            quantity=quantity,
            unit=self.canonical_name(collected["UNIT"]),
            temperature=" ".join(collected["TEMP"]).lower(),
            dry_fresh=" ".join(collected["DRY/FRESH"]).lower(),
            size=" ".join(collected["SIZE"]).lower(),
            quantity_value=quantity_value,
        )

    def canonical_name(self, name_tokens: Sequence[str]) -> str:
        """Canonicalise NAME/UNIT tokens: lower-case, lemmatise, drop stop words."""
        if not name_tokens:
            return ""
        result = self._canonicalizer.run(" ".join(name_tokens))
        return " ".join(result.tokens)
