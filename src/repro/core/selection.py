"""Training-set selection via POS-vector clustering (Sections II.D and II.E).

The paper's key data-efficiency idea: instead of annotating a random sample
of ingredient phrases, embed every *unique* phrase as a 1x36 POS-frequency
vector, cluster the vectors with K-Means (k chosen by the elbow criterion,
23 in the paper) and annotate a fixed percentage of phrases from every
cluster.  The resulting training set covers every lexical-structure family,
which is what makes a small annotated set generalise.

:class:`TrainingSetSelector` packages that procedure; in this reproduction
the "manual annotation" step is replaced by looking up the generator's gold
tags for the selected phrases.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.cluster.elbow import elbow_point, inertia_curve
from repro.cluster.kmeans import KMeans
from repro.cluster.sampling import ClusterStratifiedSampler
from repro.data.models import AnnotatedPhrase
from repro.errors import ConfigurationError, DataError
from repro.pos.vectorizer import PosBagOfWordsVectorizer
from repro.utils import make_rng

__all__ = ["ClusteringSelection", "TrainingSetSelector"]


@dataclass(frozen=True)
class ClusteringSelection:
    """Result of one training-set selection run.

    Attributes:
        train: Phrases selected for (simulated) annotation and training.
        test: Phrases selected for testing, disjoint from ``train``.
        cluster_labels: Cluster index of every unique phrase.
        vectors: The POS-frequency vectors of the unique phrases.
        unique_phrases: The unique phrases themselves (aligned with labels).
        n_clusters: Number of clusters used.
        inertia: Inertia of the chosen clustering.
    """

    train: list[AnnotatedPhrase]
    test: list[AnnotatedPhrase]
    cluster_labels: np.ndarray
    vectors: np.ndarray
    unique_phrases: list[AnnotatedPhrase]
    n_clusters: int
    inertia: float


class TrainingSetSelector:
    """Cluster-stratified selection of NER training/testing phrases.

    Args:
        vectorizer: POS bag-of-words vectoriser built on a trained POS tagger.
        n_clusters: Number of K-Means clusters; ``None`` selects it with the
            elbow criterion over ``elbow_candidates``.
        train_fraction: Fraction of each cluster selected for training
            (paper: 0.01 for AllRecipes, 0.005 for FOOD.com).
        test_fraction: Fraction selected for testing (paper: 0.0033 / 0.00165).
        elbow_candidates: Candidate ``k`` values for the elbow criterion.
        seed: Seed shared by clustering and sampling.
    """

    def __init__(
        self,
        vectorizer: PosBagOfWordsVectorizer,
        *,
        n_clusters: int | None = 23,
        train_fraction: float = 0.01,
        test_fraction: float = 0.0033,
        elbow_candidates: Sequence[int] = (4, 8, 12, 16, 20, 23, 26, 30),
        seed: int | None = None,
    ) -> None:
        if n_clusters is not None and n_clusters < 2:
            raise ConfigurationError("n_clusters must be at least 2 when given")
        self.vectorizer = vectorizer
        self.n_clusters = n_clusters
        self.train_fraction = train_fraction
        self.test_fraction = test_fraction
        self.elbow_candidates = tuple(elbow_candidates)
        self.seed = seed

    def select(self, phrases: Sequence[AnnotatedPhrase]) -> ClusteringSelection:
        """Run vectorisation, clustering and stratified sampling on ``phrases``."""
        if len(phrases) == 0:
            raise DataError("cannot select a training set from zero phrases")
        unique = self._unique_phrases(phrases)
        vectors = self.vectorizer.transform_tokenized([phrase.tokens for phrase in unique])

        n_clusters = self.n_clusters
        if n_clusters is None:
            candidates = [k for k in self.elbow_candidates if k <= len(unique)]
            if not candidates:
                candidates = [min(2, len(unique))]
            curve = inertia_curve(vectors, candidates, seed=self.seed)
            n_clusters = elbow_point(curve)
        n_clusters = min(n_clusters, len(unique))

        estimator = KMeans(n_clusters, seed=self.seed)
        result = estimator.fit(vectors)

        sampler = ClusterStratifiedSampler(
            train_fraction=self.train_fraction,
            test_fraction=self.test_fraction,
            seed=self.seed,
        )
        sample = sampler.sample(result.labels)
        train = [unique[index] for index in sample.train_indices]
        test = [unique[index] for index in sample.test_indices]
        return ClusteringSelection(
            train=train,
            test=test,
            cluster_labels=result.labels,
            vectors=vectors,
            unique_phrases=unique,
            n_clusters=n_clusters,
            inertia=result.inertia,
        )

    def select_random(
        self, phrases: Sequence[AnnotatedPhrase], *, train_size: int, test_size: int
    ) -> tuple[list[AnnotatedPhrase], list[AnnotatedPhrase]]:
        """Uniform random baseline with the same output sizes (ablation).

        This is what the paper's preliminary experiment did ("a small set of
        annotated examples ... was not successful"): sample uniformly at
        random instead of stratifying by cluster.
        """
        unique = self._unique_phrases(phrases)
        if train_size + test_size > len(unique):
            raise DataError(
                f"cannot draw {train_size}+{test_size} phrases from {len(unique)} unique phrases"
            )
        rng = make_rng(self.seed)
        order = rng.permutation(len(unique))
        train = [unique[index] for index in order[:train_size]]
        test = [unique[index] for index in order[train_size : train_size + test_size]]
        return train, test

    @staticmethod
    def _unique_phrases(phrases: Sequence[AnnotatedPhrase]) -> list[AnnotatedPhrase]:
        seen: set[str] = set()
        unique: list[AnnotatedPhrase] = []
        for phrase in phrases:
            if phrase.text not in seen:
                seen.add(phrase.text)
                unique.append(phrase)
        return unique
