"""Temporal event-chain model over cooking processes.

Section III of the paper frames recipe instructions as a *narrative chain*:
a temporally ordered sequence of events whose protagonists are ingredients
and utensils (following Chambers & Jurafsky's unsupervised narrative-chain
work, which the paper cites).  The structured output already records the
order of relation tuples; this module learns corpus-level regularities over
that order:

* a first-order Markov model over cooking processes (which technique tends
  to follow which), with additive smoothing;
* typical *positions* of every process inside a recipe (preheat happens
  early, garnish and serve happen late);
* a plausibility score for a new process sequence, used by the novel-recipe
  generator and useful for detecting shuffled or truncated instructions.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.recipe_model import StructuredRecipe
from repro.errors import DataError, NotFittedError
from repro.utils import make_py_rng

__all__ = ["EventChainModel", "ProcessStatistics"]

#: Synthetic boundary symbols of the process chain.
CHAIN_START = "<start>"
CHAIN_END = "<end>"


@dataclass(frozen=True)
class ProcessStatistics:
    """Corpus statistics for one cooking process.

    Attributes:
        process: The technique lemma.
        count: Number of occurrences across the corpus.
        mean_position: Mean relative position in the recipe (0 = first event,
            1 = last event).
        common_followers: Most frequent next processes, ordered.
    """

    process: str
    count: int
    mean_position: float
    common_followers: tuple[str, ...]


class EventChainModel:
    """First-order temporal model over cooking-process sequences.

    Args:
        smoothing: Additive smoothing for the transition probabilities.
    """

    def __init__(self, *, smoothing: float = 0.5) -> None:
        if smoothing <= 0:
            raise DataError(f"smoothing must be positive, got {smoothing}")
        self.smoothing = float(smoothing)
        self._transition_counts: dict[str, Counter] = defaultdict(Counter)
        self._process_counts: Counter = Counter()
        self._position_sums: dict[str, float] = defaultdict(float)
        self._vocabulary: set[str] = set()
        self._trained = False

    # ------------------------------------------------------------------ fit

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has seen at least one recipe."""
        return self._trained

    def fit(self, recipes: Iterable[StructuredRecipe]) -> "EventChainModel":
        """Accumulate transition and position statistics from structured recipes."""
        n_recipes = 0
        for recipe in recipes:
            chain = self.process_chain(recipe)
            if not chain:
                continue
            n_recipes += 1
            padded = [CHAIN_START, *chain, CHAIN_END]
            for previous, current in zip(padded, padded[1:]):
                self._transition_counts[previous][current] += 1
            for position, process in enumerate(chain):
                self._process_counts[process] += 1
                relative = position / max(len(chain) - 1, 1)
                self._position_sums[process] += relative
                self._vocabulary.add(process)
        if n_recipes == 0:
            raise DataError("no recipes with extractable process chains")
        self._trained = True
        return self

    @staticmethod
    def process_chain(recipe: StructuredRecipe) -> list[str]:
        """The temporally ordered process sequence of a structured recipe."""
        return [relation.process for _, relation in recipe.temporal_sequence()]

    # ------------------------------------------------------------ statistics

    def statistics(self, top_followers: int = 3) -> list[ProcessStatistics]:
        """Per-process statistics, most frequent first."""
        self._require_trained()
        result = []
        for process, count in self._process_counts.most_common():
            followers = tuple(
                follower
                for follower, _ in self._transition_counts[process].most_common(top_followers)
                if follower != CHAIN_END
            )
            result.append(
                ProcessStatistics(
                    process=process,
                    count=count,
                    mean_position=self._position_sums[process] / count,
                    common_followers=followers,
                )
            )
        return result

    def early_processes(self, n: int = 5) -> list[str]:
        """Processes that typically occur earliest in a recipe."""
        stats = sorted(self.statistics(), key=lambda item: item.mean_position)
        return [item.process for item in stats[:n]]

    def late_processes(self, n: int = 5) -> list[str]:
        """Processes that typically occur last in a recipe."""
        stats = sorted(self.statistics(), key=lambda item: -item.mean_position)
        return [item.process for item in stats[:n]]

    def transition_probability(self, previous: str, current: str) -> float:
        """Smoothed P(current | previous)."""
        self._require_trained()
        vocabulary_size = len(self._vocabulary) + 1  # +1 for the end symbol
        row = self._transition_counts.get(previous, Counter())
        total = sum(row.values())
        return (row[current] + self.smoothing) / (total + self.smoothing * vocabulary_size)

    def chain_log_likelihood(self, chain: Sequence[str]) -> float:
        """Log probability of a process chain under the transition model."""
        self._require_trained()
        if not chain:
            raise DataError("cannot score an empty process chain")
        padded = [CHAIN_START, *chain, CHAIN_END]
        return sum(
            math.log(self.transition_probability(previous, current))
            for previous, current in zip(padded, padded[1:])
        )

    def plausibility(self, chain: Sequence[str]) -> float:
        """Length-normalised plausibility in (0, 1] (geometric-mean probability)."""
        return math.exp(self.chain_log_likelihood(chain) / (len(chain) + 1))

    def score_recipe(self, recipe: StructuredRecipe) -> float:
        """Plausibility of a structured recipe's process ordering."""
        chain = self.process_chain(recipe)
        if not chain:
            return 0.0
        return self.plausibility(chain)

    # ------------------------------------------------------------- sampling

    def sample_chain(
        self, *, max_length: int = 12, seed: int | None = None, temperature: float = 1.0
    ) -> list[str]:
        """Sample a plausible process chain from the transition model.

        Args:
            max_length: Hard cap on the chain length.
            seed: Sampling seed.
            temperature: Softens (>1) or sharpens (<1) the transition
                distribution before sampling.
        """
        self._require_trained()
        if max_length < 1:
            raise DataError("max_length must be at least 1")
        if temperature <= 0:
            raise DataError("temperature must be positive")
        rng = make_py_rng(seed)
        chain: list[str] = []
        current = CHAIN_START
        candidates = sorted(self._vocabulary) + [CHAIN_END]
        for _ in range(max_length):
            weights = [
                self.transition_probability(current, candidate) ** (1.0 / temperature)
                for candidate in candidates
            ]
            chosen = rng.choices(candidates, weights=weights, k=1)[0]
            if chosen == CHAIN_END:
                break
            chain.append(chosen)
            current = chosen
        if not chain:
            # Degenerate sample (immediate end): fall back to the most common process.
            chain.append(self._process_counts.most_common(1)[0][0])
        return chain

    def _require_trained(self) -> None:
        if not self._trained:
            raise NotFittedError("EventChainModel used before fit()")
