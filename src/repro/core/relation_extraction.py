"""Dependency-based many-to-many relation extraction (Section III.B).

For every cooking process found by the instruction NER model, the extractor
walks the dependency tree of the instruction clause and gathers

* direct objects and subjects of the process verb,
* prepositional objects (``prep`` -> ``pobj``),
* conjuncts and compounds of those objects,

then keeps only the entities the NER model labelled INGREDIENT or UTENSIL.
The result is one :class:`~repro.core.recipe_model.RelationTuple` per
process occurrence -- the many-to-many relation the paper argues for.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.recipe_model import RelationTuple
from repro.errors import DataError
from repro.parsing.rules import RecipeDependencyParser
from repro.parsing.tree import DependencyTree
from repro.pos.tagger import PerceptronPosTagger
from repro.text.lemmatizer import Lemmatizer
from repro.utils import stable_unique

__all__ = ["RelationExtractor"]

#: Dependency labels that connect a verb to its candidate objects.
_OBJECT_LABELS = {"dobj", "nsubj", "obj", "iobj"}
#: Labels that extend an object to further entity tokens.
_EXPANSION_LABELS = {"conj", "compound", "appos"}


class RelationExtractor:
    """Extracts many-to-many (process, ingredients, utensils) tuples.

    Args:
        pos_tagger: Trained POS tagger used when gold POS tags are absent.
        parser: Dependency parser (defaults to the rule-based recipe parser).
        lemmatizer: Lemmatizer for canonicalising processes and entities.
    """

    def __init__(
        self,
        pos_tagger: PerceptronPosTagger,
        *,
        parser: RecipeDependencyParser | None = None,
        lemmatizer: Lemmatizer | None = None,
    ) -> None:
        self._pos_tagger = pos_tagger
        self._parser = parser or RecipeDependencyParser()
        self._lemmatizer = lemmatizer or Lemmatizer()

    # -------------------------------------------------------------- extract

    def extract(
        self,
        tokens: Sequence[str],
        ner_tags: Sequence[str],
        *,
        pos_tags: Sequence[str] | None = None,
    ) -> list[RelationTuple]:
        """Relation tuples for one instruction step.

        Args:
            tokens: Tokenised instruction step.
            ner_tags: Instruction-section NER tags aligned with ``tokens``.
            pos_tags: Optional gold POS tags; predicted when omitted.
        """
        if len(tokens) != len(ner_tags):
            raise DataError("tokens and ner_tags must align")
        if len(tokens) == 0:
            return []
        if pos_tags is None:
            pos_tags = self._pos_tagger.tag_sequence(list(tokens))
        elif len(pos_tags) != len(tokens):
            raise DataError("tokens and pos_tags must align")

        relations: list[RelationTuple] = []
        for clause_tokens, clause_ner, clause_pos in self._split_clauses(tokens, ner_tags, pos_tags):
            tree = self._parser.parse(clause_tokens, clause_pos)
            relations.extend(self._relations_for_clause(tree, clause_ner))
        return relations

    def parse(self, tokens: Sequence[str], pos_tags: Sequence[str] | None = None) -> DependencyTree:
        """Expose the dependency tree (used by the Fig. 3 experiment)."""
        if pos_tags is None:
            pos_tags = self._pos_tagger.tag_sequence(list(tokens))
        return self._parser.parse(list(tokens), list(pos_tags))

    # ------------------------------------------------------------ internals

    @staticmethod
    def _split_clauses(
        tokens: Sequence[str], ner_tags: Sequence[str], pos_tags: Sequence[str]
    ):
        """Split a step at sentence-final periods into independent clauses."""
        start = 0
        for index, token in enumerate(tokens):
            if token == ".":
                if index > start:
                    yield (
                        list(tokens[start:index]),
                        list(ner_tags[start:index]),
                        list(pos_tags[start:index]),
                    )
                start = index + 1
        if start < len(tokens):
            yield (
                list(tokens[start:]),
                list(ner_tags[start:]),
                list(pos_tags[start:]),
            )

    def _relations_for_clause(
        self, tree: DependencyTree, ner_tags: Sequence[str]
    ) -> list[RelationTuple]:
        relations: list[RelationTuple] = []
        for index in range(len(tree)):
            if ner_tags[index] != "PROCESS":
                continue
            candidate_indices = self._candidate_entities(tree, index)
            ingredients: list[str] = []
            utensils: list[str] = []
            for candidate in candidate_indices:
                tag = ner_tags[candidate]
                if tag == "INGREDIENT":
                    ingredients.append(self._entity_text(tree, ner_tags, candidate, "INGREDIENT"))
                elif tag == "UTENSIL":
                    utensils.append(self._entity_text(tree, ner_tags, candidate, "UTENSIL"))
            process = self._lemmatizer.lemmatize(tree.token(index).lower(), pos="verb")
            relations.append(
                RelationTuple(
                    process=process,
                    ingredients=tuple(stable_unique(ingredients)),
                    utensils=tuple(stable_unique(utensils)),
                )
            )
        return relations

    def _candidate_entities(self, tree: DependencyTree, verb_index: int) -> list[int]:
        """Token indices reachable from the verb through object-like arcs."""
        candidates: list[int] = []
        for child in tree.children(verb_index):
            label = tree.label_of(child)
            if label in _OBJECT_LABELS:
                candidates.extend(self._expand_entity(tree, child))
            elif label == "prep":
                for grandchild in tree.children(child, label="pobj"):
                    candidates.extend(self._expand_entity(tree, grandchild))
        return sorted(stable_unique(candidates))

    def _expand_entity(self, tree: DependencyTree, index: int) -> list[int]:
        """The entity head plus its conjuncts/compounds (e.g. 'salt and pepper')."""
        collected = [index]
        stack = [index]
        while stack:
            node = stack.pop()
            for child in tree.children(node):
                if tree.label_of(child) in _EXPANSION_LABELS:
                    collected.append(child)
                    stack.append(child)
        # Compound modifiers point *to* their head ("olive" -> "oil"); include
        # left-neighbour compounds whose head is the collected node as well.
        for node in list(collected):
            for child in tree.children(node, label="compound"):
                if child not in collected:
                    collected.append(child)
        return collected

    def _entity_text(
        self, tree: DependencyTree, ner_tags: Sequence[str], index: int, label: str
    ) -> str:
        """Full surface form of the entity span containing ``index``."""
        start = index
        while start > 0 and ner_tags[start - 1] == label:
            start -= 1
        end = index + 1
        while end < len(tree) and ner_tags[end] == label:
            end += 1
        tokens = [tree.token(position).lower() for position in range(start, end)]
        lemmas = [self._lemmatizer.lemmatize(token, pos="noun") for token in tokens]
        return " ".join(lemmas)
