"""The paper's contribution: the recipe data structure and its inference pipeline.

* :mod:`repro.core.schema` -- the named-entity tag schema (Table II) and the
  instruction-section tag set.
* :mod:`repro.core.recipe_model` -- the structured recipe representation
  (Fig. 1): ingredient records, instruction events and relation tuples.
* :mod:`repro.core.selection` -- POS-vector clustering and cluster-stratified
  training-set selection (Sections II.D/E).
* :mod:`repro.core.ingredient_pipeline` -- pre-processing + NER over the
  ingredients section (Section II).
* :mod:`repro.core.dictionary` -- frequency-thresholded dictionaries of
  cooking techniques and utensils (Section III.A).
* :mod:`repro.core.instruction_pipeline` -- NER over the instructions section
  (Section III.A).
* :mod:`repro.core.relation_extraction` -- dependency-based many-to-many
  relation extraction (Section III.B).
* :mod:`repro.core.pipeline` -- the end-to-end :class:`RecipeModeler`.
"""

from repro.core.schema import (
    ENTITY_TAGS,
    INGREDIENT_TAGS,
    INGREDIENT_TAG_DESCRIPTIONS,
    INSTRUCTION_TAGS,
    validate_ingredient_tag,
    validate_instruction_tag,
)
from repro.core.recipe_model import (
    IngredientRecord,
    InstructionEvent,
    RelationTuple,
    StructuredRecipe,
)
from repro.core.ingredient_pipeline import IngredientPipeline
from repro.core.instruction_pipeline import InstructionPipeline
from repro.core.dictionary import EntityDictionary, build_dictionaries
from repro.core.relation_extraction import RelationExtractor
from repro.core.selection import ClusteringSelection, TrainingSetSelector
from repro.core.event_chain import EventChainModel, ProcessStatistics
from repro.core.pipeline import RecipeModeler, RecipeModelerConfig

__all__ = [
    "ClusteringSelection",
    "ENTITY_TAGS",
    "EntityDictionary",
    "EventChainModel",
    "ProcessStatistics",
    "INGREDIENT_TAGS",
    "INGREDIENT_TAG_DESCRIPTIONS",
    "INSTRUCTION_TAGS",
    "IngredientPipeline",
    "IngredientRecord",
    "InstructionEvent",
    "InstructionPipeline",
    "RecipeModeler",
    "RecipeModelerConfig",
    "RelationExtractor",
    "RelationTuple",
    "StructuredRecipe",
    "TrainingSetSelector",
    "build_dictionaries",
    "validate_ingredient_tag",
    "validate_instruction_tag",
]
