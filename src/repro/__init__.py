"""Reproduction of "A Named Entity Based Approach to Model Recipes".

The package implements, from scratch, every component the paper relies on:

* :mod:`repro.text` -- recipe-aware tokenisation, normalisation and
  lemmatisation (replacing NLTK pre-processing).
* :mod:`repro.pos` -- an averaged-perceptron part-of-speech tagger over the
  36-tag Penn Treebank tagset and the POS bag-of-words vectoriser used to
  embed ingredient phrases (replacing the Stanford POS Twitter model).
* :mod:`repro.ner` -- linear-chain CRF, averaged structured perceptron and
  HMM sequence labellers (replacing the Stanford NER tagger).
* :mod:`repro.parsing` -- dependency trees, a rule-based parser for
  imperative recipe instructions and a trainable transition parser
  (replacing spaCy).
* :mod:`repro.cluster` -- K-Means, PCA, the elbow criterion and
  cluster-stratified sampling (replacing scikit-learn).
* :mod:`repro.data` -- a deterministic simulator of the RecipeDB corpus with
  gold annotations for both recipe sections.
* :mod:`repro.core` -- the paper's contribution: the recipe data structure,
  the ingredient-section pipeline, the instruction-section pipeline and the
  many-to-many relation extraction.
* :mod:`repro.applications` -- recipe similarity, nutrition estimation and
  ingredient alias analysis built on top of the structured representation.
* :mod:`repro.eval` -- entity-level precision/recall/F1, cross-validation
  and report formatting.
* :mod:`repro.experiments` -- one module per table/figure of the paper.

Scaling substrates grown on top of the reproduction:

* :mod:`repro.engine` -- vectorised encode/score/decode kernels shared by
  every sequence labeller (CSR feature interning, batched lattice sweeps,
  length bucketing, inference-session caches).
* :mod:`repro.serve` -- model registry, microbatching queue and HTTP front
  end for low-latency tagging.
* :mod:`repro.corpus` -- streaming, bounded-memory, multi-core corpus
  structuring (lazy JSONL ingestion, budget-bounded chunk planning, ordered
  parallel execution, JSONL sinks).
"""

from repro.core.schema import ENTITY_TAGS, INGREDIENT_TAGS, INSTRUCTION_TAGS
from repro.core.pipeline import RecipeModeler
from repro.core.recipe_model import (
    IngredientRecord,
    InstructionEvent,
    RelationTuple,
    StructuredRecipe,
)
from repro.data.generator import RecipeCorpusGenerator
from repro.data.recipedb import RecipeDB

__version__ = "1.0.0"

__all__ = [
    "ENTITY_TAGS",
    "INGREDIENT_TAGS",
    "INSTRUCTION_TAGS",
    "IngredientRecord",
    "InstructionEvent",
    "RecipeCorpusGenerator",
    "RecipeDB",
    "RecipeModeler",
    "RelationTuple",
    "StructuredRecipe",
    "__version__",
]
