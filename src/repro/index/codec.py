"""Compact binary posting format (v2): delta+varint chunks behind mmap.

A v1 :class:`~repro.index.builder.RecipeIndex` artifact is one JSON envelope
holding every posting list and span group as JSON arrays — 1.87 MB and a
full parse for 54k postings on the benchmark corpus.  This module is the v2
alternative: the same hardened envelope discipline, but the posting lists
live in a **binary section** after the JSON header and are decoded **lazily,
one term at a time**:

* the header (small JSON) carries the format marker, version, per-term byte
  offsets/lengths/counts and the per-section SHA-256s;
* each term's posting list is delta-encoded (strictly increasing doc ids →
  gaps), varint-compressed, and deflated when that wins;
* the per-doc metadata table is one deflated JSON blob, decoded on first
  doc access, so opening an artifact materialises nothing;
* loads :func:`mmap <repro.persistence.open_artifact_buffer>` the file and
  verify the binary checksum over the **raw mapped bytes** — open cost is
  O(header), not O(index) — then hand out a :class:`RecipeIndexV2` whose
  :meth:`postings` decodes through a bounded LRU of warm terms.

Wire format of one raw (pre-deflate) term chunk::

    uvarint  posting_count
    repeat posting_count times:
        uvarint  doc id delta   (the id itself for the first posting)
        uvarint  span_count
        repeat span_count times:
            uvarint  where code     (index into the header's "wheres" table)
            uvarint  position

The header's term table maps ``field -> term -> entry`` into the binary
section.  Three entry shapes coexist (readers accept all of them):

* ``[offset, length, count, enc]`` — PR-6 era, one chunk, no skip bounds
  (``enc``: 0 raw, 1 zlib);
* ``[offset, length, count, enc, first_id, last_id]`` — one chunk
  (``count <= CHUNK_DOCS``) carrying its doc-id bounds;
* ``[offset, total_length, count, 2, blocks]`` — ``enc == ENC_CHUNKED``:
  the list is split into ``CHUNK_DOCS``-doc chunks, each independently
  encoded/deflated, and ``blocks`` is
  ``[[rel_offset, length, count, enc, first_id, last_id], ...]``.

The ``(first_id, last_id)`` skip bounds are what lets an AND-intersection
holding a candidate range decode only the chunks that overlap it
(:meth:`RecipeIndexV2.posting_blocks`).  ``"docs" -> [offset, length,
enc]`` points at the doc-metadata blob, and ``"doc_stats" -> [offset,
length, enc, total_occurrences]`` (absent from PR-6 artifacts) at a varint
array of per-doc lengths — the BM25 normalization statistics, readable
without touching any posting list.  Everything a query planner wants
*without* decoding — posting-list lengths, chunk bounds, doc lengths — is
header or stats-section metadata.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections import OrderedDict
from pathlib import Path

from repro.errors import PersistenceError, QueryError
from repro.index.builder import FIELDS, PostingBlocks, PostingList, RecipeIndex
from repro.persistence import (
    FORMAT_VERSION,
    check_payload_version,
    open_artifact_buffer,
    parse_binary_artifact,
    write_artifact,
)
from repro.text.normalize import normalize_phrase

__all__ = [
    "CHUNK_DOCS",
    "INDEX_V2_ARTIFACT_FORMAT",
    "RecipeIndexV2",
    "build_v2_sections",
    "decode_posting",
    "decode_uvarint",
    "encode_posting",
    "encode_uvarint",
    "is_v2_artifact",
    "load_index_v2",
    "load_index_v2_buffer",
    "save_index_v2",
]

#: ``format`` marker of the v2 (binary-section) index artifact envelope.
INDEX_V2_ARTIFACT_FORMAT = "repro-recipe-index-v2"

#: Envelopes are written with the format marker first, so a v2 artifact is
#: identified by its literal byte prefix without parsing anything.
_V2_PREFIX_TEXT = f'{{"format": "{INDEX_V2_ARTIFACT_FORMAT}"'
_V2_PREFIX = _V2_PREFIX_TEXT.encode("utf-8")

#: Per-chunk encodings recorded in the header's term table.
ENC_RAW = 0
ENC_ZLIB = 1
#: Term-entry marker: the posting list is split into skip-scannable chunks.
ENC_CHUNKED = 2

#: Max docs per posting chunk; lists longer than this are split so an
#: AND-intersection can skip whole chunks via their (first, last) bounds.
CHUNK_DOCS = 128

#: Decoded-block LRU capacity of a lazily loaded index (a short posting
#: list is one block; long lists count one slot per decoded chunk).
DEFAULT_LRU_TERMS = 256


def is_v2_artifact(data) -> bool:
    """Whether ``data`` (bytes-like or str) starts like a v2 index artifact."""
    if isinstance(data, str):
        return data.startswith(_V2_PREFIX_TEXT)
    return bytes(data[: len(_V2_PREFIX)]) == _V2_PREFIX


# ------------------------------------------------------------------- varints


def encode_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) as a LEB128 varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data, position: int) -> tuple[int, int]:
    """Read one varint at ``position``; returns ``(value, next_position)``."""
    result = 0
    shift = 0
    try:
        while True:
            byte = data[position]
            position += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, position
            shift += 7
    except IndexError:
        raise PersistenceError(
            "posting chunk ends mid-varint; the binary section is corrupt"
        ) from None


# ------------------------------------------------------------- posting chunks


def encode_posting(posting: PostingList, where_code: dict[str, int]) -> bytes:
    """Delta+varint encode one posting list with its span payloads."""
    out = bytearray()
    encode_uvarint(out, len(posting.ids))
    previous = 0
    for index, (doc_id, span_group) in enumerate(zip(posting.ids, posting.spans)):
        encode_uvarint(out, doc_id if index == 0 else doc_id - previous)
        previous = doc_id
        encode_uvarint(out, len(span_group))
        for where, position in span_group:
            encode_uvarint(out, where_code[where])
            encode_uvarint(out, position)
    return bytes(out)


def decode_posting(data, wheres: list[str], expected_count: int) -> PostingList:
    """Decode one raw term chunk back into a :class:`PostingList`.

    The decoded spans are plain ``[where, position]`` lists — exactly the
    structures a v1 JSON load produces — so v1 and v2 answers compare
    element-wise equal, spans included.
    """
    count, position = decode_uvarint(data, 0)
    if count != expected_count:
        raise PersistenceError(
            f"posting chunk holds {count} postings but the term table records "
            f"{expected_count}; the artifact is corrupt"
        )
    ids: list[int] = []
    spans: list[list[list]] = []
    doc_id = 0
    n_wheres = len(wheres)
    for index in range(count):
        delta, position = decode_uvarint(data, position)
        doc_id = delta if index == 0 else doc_id + delta
        ids.append(doc_id)
        span_count, position = decode_uvarint(data, position)
        group: list[list] = []
        for _ in range(span_count):
            code, position = decode_uvarint(data, position)
            if code >= n_wheres:
                raise PersistenceError(
                    f"posting chunk references where-code {code} but the "
                    f"header lists only {n_wheres}; the artifact is corrupt"
                )
            span_position, position = decode_uvarint(data, position)
            group.append([wheres[code], span_position])
        spans.append(group)
    if position != len(data):
        raise PersistenceError(
            f"posting chunk has {len(data) - position} trailing bytes; "
            "the artifact is corrupt"
        )
    return PostingList(ids=ids, spans=spans)


def _pack_chunk(raw: bytes) -> tuple[int, bytes]:
    """Deflate a chunk when that is smaller; returns ``(enc, data)``."""
    deflated = zlib.compress(raw, 6)
    if len(deflated) < len(raw):
        return ENC_ZLIB, deflated
    return ENC_RAW, raw


def _unpack_chunk(view, enc: int):
    """Inverse of :func:`_pack_chunk`; raw chunks stay zero-copy views."""
    if enc == ENC_ZLIB:
        try:
            return zlib.decompress(view)
        except zlib.error as error:
            raise PersistenceError(
                f"deflated chunk does not inflate ({error}); the artifact is corrupt"
            ) from error
    if enc == ENC_RAW:
        return view
    raise PersistenceError(f"unknown chunk encoding {enc!r}; the artifact is corrupt")


# --------------------------------------------------------------- whole files


def _encode_term_entry(
    binary: bytearray, posting: PostingList, where_code: dict[str, int]
) -> list:
    """Append one term's chunk(s) to ``binary``; returns its header entry.

    Short lists (``<= CHUNK_DOCS`` docs) stay one chunk and record their
    doc-id bounds inline; longer lists split into ``CHUNK_DOCS``-doc chunks
    behind an ``ENC_CHUNKED`` block table so readers can skip-decode.
    """
    count = len(posting.ids)
    if count <= CHUNK_DOCS:
        enc, data = _pack_chunk(encode_posting(posting, where_code))
        entry = [len(binary), len(data), count, enc, posting.ids[0], posting.ids[-1]]
        binary.extend(data)
        return entry
    start = len(binary)
    blocks: list[list] = []
    for begin in range(0, count, CHUNK_DOCS):
        sub = PostingList(
            ids=posting.ids[begin : begin + CHUNK_DOCS],
            spans=posting.spans[begin : begin + CHUNK_DOCS],
        )
        enc, data = _pack_chunk(encode_posting(sub, where_code))
        blocks.append(
            [len(binary) - start, len(data), len(sub.ids), enc, sub.ids[0], sub.ids[-1]]
        )
        binary.extend(data)
    return [start, len(binary) - start, count, ENC_CHUNKED, blocks]


def build_v2_sections(index: RecipeIndex) -> tuple[dict, bytes]:
    """Serialise ``index`` into the v2 ``(header payload, binary section)``.

    Deterministic: terms are laid out in sorted order per field, the
    where-code table in first-appearance order of that layout, so the same
    index always produces the same bytes.
    """
    binary = bytearray()
    wheres: list[str] = []
    where_code: dict[str, int] = {}
    term_tables: dict[str, dict[str, list]] = {}
    for field in FIELDS:
        table = index._field(field)
        entries: dict[str, list] = {}
        for term in sorted(table):
            posting = table[term]
            for span_group in posting.spans:
                for where, _ in span_group:
                    if where not in where_code:
                        where_code[where] = len(wheres)
                        wheres.append(where)
            entries[term] = _encode_term_entry(binary, posting, where_code)
        term_tables[field] = entries
    docs_raw = json.dumps(
        list(index.docs), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    docs_enc, docs_data = _pack_chunk(docs_raw)
    docs_entry = [len(binary), len(docs_data), docs_enc]
    binary.extend(docs_data)
    # Doc-stats section: one varint per doc (its BM25 length), so ranking
    # normalization never has to decode a single posting list.
    lengths = index.doc_lengths()
    stats_raw = bytearray()
    encode_uvarint(stats_raw, len(lengths))
    for value in lengths:
        encode_uvarint(stats_raw, value)
    stats_enc, stats_data = _pack_chunk(bytes(stats_raw))
    stats_entry = [len(binary), len(stats_data), stats_enc, sum(lengths)]
    binary.extend(stats_data)
    payload = {
        "version": FORMAT_VERSION,
        "source": index.source,
        "doc_count": index.doc_count,
        "wheres": wheres,
        "docs": docs_entry,
        "doc_stats": stats_entry,
        "terms": term_tables,
    }
    return payload, bytes(binary)


def save_index_v2(index: RecipeIndex, path: str | Path) -> None:
    """Atomically write ``index`` as a v2 binary artifact (see module doc)."""
    payload, binary = build_v2_sections(index)
    write_artifact(path, payload, format=INDEX_V2_ARTIFACT_FORMAT, binary=binary)


def load_index_v2_buffer(buffer, source: str = "<index>") -> "RecipeIndexV2":
    """Open a v2 artifact from a bytes-like buffer (typically an mmap).

    Cost is O(header): the envelope JSON is parsed, both section checksums
    are verified over raw bytes, and the index is handed back with every
    posting list still encoded — queries decode only the terms they touch.
    """
    payload, binary = parse_binary_artifact(
        buffer, format=INDEX_V2_ARTIFACT_FORMAT, source=source, what="index artifact"
    )
    check_payload_version(payload, f"recipe index {source}")
    for field in ("doc_count", "wheres", "docs", "terms"):
        if field not in payload:
            raise PersistenceError(
                f"index artifact {source} header is missing its {field!r} field"
            )
    return RecipeIndexV2(payload, binary, buffer=buffer)


def load_index_v2(path: str | Path) -> "RecipeIndexV2":
    """mmap a v2 artifact file and open it lazily (see buffer variant)."""
    return load_index_v2_buffer(open_artifact_buffer(path), source=str(path))


def _term_blocks(entry: list) -> list[tuple]:
    """Normalise a term-table entry of any generation to its block list.

    Returns ``[(abs_offset, length, count, enc, first_id, last_id), ...]``.
    PR-6 4-element entries become one block with ``(None, None)`` bounds
    (never skipped, always decoded); 6-element entries one bounded block;
    ``ENC_CHUNKED`` entries expand their relative block table.
    """
    if len(entry) == 4:
        offset, length, count, enc = entry
        return [(offset, length, count, enc, None, None)]
    offset, length, count, enc = entry[0], entry[1], entry[2], entry[3]
    if enc != ENC_CHUNKED:
        first, last = entry[4], entry[5]
        return [(offset, length, count, enc, first, last)]
    blocks = entry[4]
    if sum(block[2] for block in blocks) != count:
        raise PersistenceError(
            "chunked term entry's block counts do not sum to its posting "
            "count; the artifact is corrupt"
        )
    return [
        (offset + rel, clen, ccount, cenc, first, last)
        for rel, clen, ccount, cenc, first, last in blocks
    ]


# ----------------------------------------------------------------- the index


class RecipeIndexV2(RecipeIndex):
    """A :class:`RecipeIndex` whose postings decode lazily from mmap'd bytes.

    Drop-in for the v1 class everywhere it is read (the query engine, the
    sharded substrate's merges, the serving layer): same methods, same
    decoded structures.  Differences are purely operational:

    * construction holds only the header tables plus a buffer view — no
      posting list or doc metadata is materialised until touched;
    * :meth:`postings` decodes one term on demand and keeps the most
      recently used ``lru_terms`` decoded lists warm;
    * :meth:`posting_count` answers from header metadata with no decode,
      which is what the query planner orders AND children by;
    * doc metadata inflates on first :meth:`doc`/:attr:`docs` access.

    Thread-safe for concurrent readers: the LRU is guarded by a lock, and
    the lazy doc decode is idempotent.
    """

    kind = "v2"

    def __init__(
        self,
        payload: dict,
        binary,
        *,
        buffer=None,
        lru_terms: int = DEFAULT_LRU_TERMS,
    ) -> None:
        self._binary = binary
        self._buffer = buffer  # keeps the mmap alive for the index's lifetime
        self._wheres = list(payload["wheres"])
        self._tables = payload["terms"]
        self._docs_entry = payload["docs"]
        self._stats_entry = payload.get("doc_stats")  # absent in PR-6 artifacts
        self._doc_count = int(payload["doc_count"])
        self.source = payload.get("source", "")
        self._docs_cache: list[dict] | None = None
        self._lru: OrderedDict[tuple[str, str], PostingList] = OrderedDict()
        self._lru_terms = lru_terms
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # ----------------------------------------------------------------- access

    @property
    def doc_count(self) -> int:
        return self._doc_count

    @property
    def docs(self) -> list[dict]:
        """Per-doc metadata, inflated from the binary section on first use."""
        if self._docs_cache is None:
            offset, length, enc = self._docs_entry
            raw = _unpack_chunk(self._chunk(offset, length), enc)
            try:
                docs = json.loads(bytes(raw))
            except json.JSONDecodeError as error:
                raise PersistenceError(
                    f"doc-metadata chunk is not valid JSON ({error}); "
                    "the artifact is corrupt"
                ) from error
            self._docs_cache = docs
        return self._docs_cache

    def doc(self, doc_id: int) -> dict:
        return self.docs[doc_id]

    def terms(self, field: str) -> list[str]:
        return sorted(self._table(field))

    def postings(self, field: str, term: str) -> PostingList | None:
        normalized = normalize_phrase(term)
        entry = self._table(field).get(normalized)
        if entry is None:
            return None
        blocks = _term_blocks(entry)
        if len(blocks) == 1:
            return self._load_block(field, normalized, 0, blocks[0])
        ids: list[int] = []
        spans: list[list[list]] = []
        for k, block in enumerate(blocks):
            part = self._load_block(field, normalized, k, block)
            ids.extend(part.ids)
            spans.extend(part.spans)
        return PostingList(ids=ids, spans=spans)

    def posting_blocks(self, field: str, term: str) -> PostingBlocks | None:
        """Skip-scannable block view straight off the header's chunk table.

        Nothing is decoded here: bounds come from the per-chunk skip
        metadata, and each ``load(k)`` decodes one chunk through the LRU.
        """
        normalized = normalize_phrase(term)
        entry = self._table(field).get(normalized)
        if entry is None:
            return None
        blocks = _term_blocks(entry)
        return PostingBlocks(
            count=entry[2],
            bounds=[(block[4], block[5]) for block in blocks],
            load=lambda k: self._load_block(field, normalized, k, blocks[k]),
        )

    def _load_block(self, field: str, normalized: str, k: int, block: tuple):
        """Decode one chunk through the LRU (one slot per ``(term, chunk)``)."""
        key = (field, normalized, k)
        with self._lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._lru.move_to_end(key)
                self._hits += 1
                return cached
            self._misses += 1
            offset, length, count, enc, _first, _last = block
            posting = decode_posting(
                _unpack_chunk(self._chunk(offset, length), enc), self._wheres, count
            )
            self._lru[key] = posting
            if len(self._lru) > self._lru_terms:
                self._lru.popitem(last=False)
            return posting

    def posting_count(self, field: str, term: str) -> int:
        """Posting-list length from header metadata — no decode, no I/O."""
        entry = self._table(field).get(normalize_phrase(term))
        return entry[2] if entry is not None else 0

    @property
    def has_doc_stats(self) -> bool:
        """Whether the artifact carries the doc-stats section (PR-6 ones do not)."""
        return self._stats_entry is not None

    def doc_lengths(self) -> list[int]:
        """Per-doc BM25 lengths, from the doc-stats section when present.

        A PR-6 artifact has no such section; its lengths are derived once by
        decoding every posting list (the v1 fallback) and cached — correct,
        just not O(header), which ``index inspect`` flags.
        """
        if self._doc_lengths_cache is None:
            if self._stats_entry is None:
                return super().doc_lengths()
            offset, length, enc = self._stats_entry[0], self._stats_entry[1], self._stats_entry[2]
            raw = _unpack_chunk(self._chunk(offset, length), enc)
            count, position = decode_uvarint(raw, 0)
            if count != self._doc_count:
                raise PersistenceError(
                    f"doc-stats section holds {count} lengths but the header "
                    f"records {self._doc_count} docs; the artifact is corrupt"
                )
            lengths: list[int] = []
            for _ in range(count):
                value, position = decode_uvarint(raw, position)
                lengths.append(value)
            if position != len(raw):
                raise PersistenceError(
                    f"doc-stats section has {len(raw) - position} trailing "
                    "bytes; the artifact is corrupt"
                )
            self._doc_lengths_cache = lengths
        return self._doc_lengths_cache

    def total_occurrences(self) -> int:
        """Corpus length from the doc-stats header entry — no decode at all."""
        if self._stats_entry is not None:
            return self._stats_entry[3]
        return super().total_occurrences()

    def stats(self) -> dict:
        return {
            "documents": self.doc_count,
            "source": self.source,
            "terms": {field: len(table) for field, table in self._tables.items()},
            "postings": sum(
                entry[2] for table in self._tables.values() for entry in table.values()
            ),
            "format": self.kind,
            "doc_stats": self.has_doc_stats,
            "lazy": {
                "decoded_terms": len(self._lru),
                "lru_terms": self._lru_terms,
                "hits": self._hits,
                "misses": self._misses,
            },
        }

    def _table(self, field: str) -> dict[str, list]:
        table = self._tables.get(field)
        if table is None:
            raise QueryError(f"unknown query field {field!r}; expected one of {FIELDS}")
        return table

    def _field(self, field: str) -> dict[str, PostingList]:
        # Full decode of one field — the merge/compaction path, which reads
        # everything anyway.  Interactive queries never come through here.
        return {term: self.postings(field, term) for term in self._table(field)}

    def _chunk(self, offset: int, length: int):
        if offset + length > len(self._binary):
            raise PersistenceError(
                "term table points past the binary section; the artifact is corrupt"
            )
        return self._binary[offset : offset + length]

    # ------------------------------------------------------------ persistence

    def to_payload(self) -> dict:
        """The v1-shaped payload (full decode — a format conversion)."""
        return {
            "version": FORMAT_VERSION,
            "source": self.source,
            "docs": list(self.docs),
            "postings": {
                field: {
                    term: {"ids": posting.ids, "spans": posting.spans}
                    for term, posting in self._field(field).items()
                }
                for field in FIELDS
            },
        }
