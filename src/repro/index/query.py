"""Boolean entity queries over a :class:`~repro.index.builder.RecipeIndex`.

The query language is conjunctive/disjunctive/negated entity predicates::

    ingredient:tomato AND process:saute AND NOT ingredient:garlic
    (ingredient:basil OR ingredient:"olive oil") AND utensil:skillet

``NOT`` binds tightest, then ``AND``, then ``OR``; parentheses group; quoted
values carry spaces.  :func:`parse_query` produces a small AST
(:class:`Term` / :class:`And` / :class:`Or` / :class:`Not`) which two
evaluators consume:

* :class:`QueryEngine` answers from the index with sorted-posting-list
  intersection/union/difference — the interactive path ("precompute once,
  answer interactively");
* :func:`matches_recipe` / :func:`scan_structured_jsonl` answer by scanning
  recipes directly — the brute-force baseline.

Both build the recipe's indexed view with the same
:func:`~repro.index.builder.extract_entities`, so their results (ids *and*
matched spans) are element-wise identical by construction; the property
tests and ``BENCH_index.json`` enforce exactly that.
"""

from __future__ import annotations

import heapq
import re
from bisect import bisect_left, bisect_right
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, replace
from itertools import islice
from pathlib import Path

from repro.core.recipe_model import StructuredRecipe
from repro.errors import QueryError
from repro.index.builder import FIELDS, PostingList, RecipeIndex, extract_entities
from repro.index.sharding import ShardedRecipeIndex
from repro.text.normalize import normalize_phrase

__all__ = [
    "And",
    "Not",
    "Or",
    "QueryEngine",
    "QueryMatch",
    "Term",
    "difference_adaptive",
    "difference_galloping",
    "difference_sorted",
    "intersect_adaptive",
    "intersect_count",
    "intersect_galloping",
    "intersect_sorted",
    "matches_recipe",
    "parse_query",
    "render_query",
    "scan_recipes",
    "scan_structured_jsonl",
    "union_sorted",
]


# ------------------------------------------------------------------------ AST


@dataclass(frozen=True)
class Term:
    """One entity predicate, e.g. ``ingredient:tomato``."""

    field: str
    value: str

    def __post_init__(self) -> None:
        if self.field not in FIELDS:
            raise QueryError(
                f"unknown query field {self.field!r}; expected one of {FIELDS}"
            )
        if not str(self.value).strip():
            raise QueryError(f"query term for field {self.field!r} has an empty value")

    @property
    def normalized(self) -> str:
        """The normalised form the index keys on."""
        return normalize_phrase(self.value)


@dataclass(frozen=True)
class And:
    """Every child must match."""

    children: tuple

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("AND requires at least one operand")


@dataclass(frozen=True)
class Or:
    """At least one child must match."""

    children: tuple

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("OR requires at least one operand")


@dataclass(frozen=True)
class Not:
    """The child must not match."""

    child: object


# --------------------------------------------------------------------- parser

_TOKEN_PATTERN = re.compile(
    r"""\(|\)|[A-Za-z_]+:"[^"]*"|[^\s()]+""",
)
_QUOTED_TERM = re.compile(r'^(?P<field>[A-Za-z_]+):"(?P<value>[^"]*)"$')
_KEYWORDS = {"AND", "OR", "NOT"}


def parse_query(text: str):
    """Parse a query string into an AST (``NOT`` > ``AND`` > ``OR``).

    Raises:
        QueryError: On empty input, unbalanced parentheses, dangling
            operators, valueless terms or unknown fields.
    """
    tokens = _TOKEN_PATTERN.findall(text)
    if not tokens:
        raise QueryError("empty query")
    parser = _Parser(tokens)
    node = parser.parse_or()
    if parser.peek() is not None:
        raise QueryError(f"unexpected token {parser.peek()!r} after the query")
    return node


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._position = 0

    def peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _take(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("query ended unexpectedly (dangling operator?)")
        self._position += 1
        return token

    def _keyword(self) -> str | None:
        """The upper-cased keyword at the cursor, if any."""
        token = self.peek()
        if token is not None and token.upper() in _KEYWORDS:
            return token.upper()
        return None

    def parse_or(self):
        children = [self.parse_and()]
        while self._keyword() == "OR":
            self._take()
            children.append(self.parse_and())
        return children[0] if len(children) == 1 else Or(tuple(children))

    def parse_and(self):
        children = [self.parse_unary()]
        while self._keyword() == "AND":
            self._take()
            children.append(self.parse_unary())
        return children[0] if len(children) == 1 else And(tuple(children))

    def parse_unary(self):
        if self._keyword() == "NOT":
            self._take()
            return Not(self.parse_unary())
        token = self._take()
        if token == "(":
            node = self.parse_or()
            if self.peek() != ")":
                raise QueryError("unbalanced parentheses in query")
            self._take()
            return node
        if token == ")":
            raise QueryError("unbalanced parentheses in query")
        if token.upper() in _KEYWORDS:
            raise QueryError(f"operator {token!r} is missing an operand")
        quoted = _QUOTED_TERM.match(token)
        if quoted is not None:
            return Term(quoted.group("field"), quoted.group("value"))
        field, separator, value = token.partition(":")
        if not separator or not value:
            raise QueryError(
                f"malformed term {token!r}; expected field:value "
                f'(e.g. ingredient:tomato or ingredient:"olive oil")'
            )
        return Term(field, value)


def render_query(node) -> str:
    """Render an AST back to a parseable query string (canonical form)."""
    if isinstance(node, Term):
        value = node.value
        if re.search(r"[\s()]", value):
            if '"' in value:
                raise QueryError(
                    f"cannot render term value {value!r}: the query grammar has "
                    "no escape for a double quote inside a quoted value"
                )
            return f'{node.field}:"{value}"'
        rendered = f"{node.field}:{value}"
        if _QUOTED_TERM.match(rendered):
            # A value that is itself quote-wrapped would re-parse with the
            # quotes stripped; refuse rather than round-trip to a different term.
            raise QueryError(
                f"cannot render term value {value!r}: it is indistinguishable "
                "from quoting syntax"
            )
        return rendered
    if isinstance(node, Not):
        return f"NOT {_render_group(node.child)}"
    if isinstance(node, And):
        return " AND ".join(_render_group(child) for child in node.children)
    if isinstance(node, Or):
        return " OR ".join(_render_group(child) for child in node.children)
    raise QueryError(f"not a query node: {node!r}")


def _render_group(node) -> str:
    rendered = render_query(node)
    return f"({rendered})" if isinstance(node, (And, Or)) else rendered


def _as_node(query):
    node = parse_query(query) if isinstance(query, str) else query
    if not isinstance(node, (Term, And, Or, Not)):
        raise QueryError(f"not a query string or query node: {query!r}")
    return node


# ------------------------------------------------------- sorted-list algebra


def intersect_sorted(left: list[int], right: list[int]) -> list[int]:
    """Merge-intersect two sorted id lists."""
    result: list[int] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i], right[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return result


def union_sorted(left: list[int], right: list[int]) -> list[int]:
    """Merge-union two sorted id lists."""
    result: list[int] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i], right[j]
        if a == b:
            result.append(a)
            i += 1
            j += 1
        elif a < b:
            result.append(a)
            i += 1
        else:
            result.append(b)
            j += 1
    result.extend(left[i:])
    result.extend(right[j:])
    return result


def difference_sorted(left: list[int], right: list[int]) -> list[int]:
    """Sorted ids in ``left`` but not in ``right``."""
    result: list[int] = []
    i = j = 0
    while i < len(left):
        while j < len(right) and right[j] < left[i]:
            j += 1
        if j >= len(right) or right[j] != left[i]:
            result.append(left[i])
        i += 1
    return result


#: Size ratio at which the adaptive kernels switch from a linear merge to a
#: galloping (exponential-probe) scan of the larger list.  Linear is
#: O(n + m); galloping is O(n log m) — the crossover sits around m/n ≈ 8.
GALLOP_SKEW = 8


def _gallop_to(values: list[int], start: int, target: int) -> int:
    """First position ``>= start`` with ``values[position] >= target``.

    Exponential probe (1, 2, 4, ... elements ahead) brackets the target,
    then a bisect inside the final bracket pins it — O(log distance), so a
    pass over the small list advances through the large one in amortised
    O(small * log(large / small)) instead of O(large).
    """
    length = len(values)
    offset = 1
    while start + offset < length and values[start + offset] < target:
        offset <<= 1
    return bisect_left(values, target, start + (offset >> 1), min(start + offset, length))


def intersect_galloping(small: list[int], large: list[int]) -> list[int]:
    """Intersect two sorted lists, galloping through the larger one.

    Callers are expected to pass the smaller list first; the result is
    element-wise identical to :func:`intersect_sorted` either way.
    """
    result: list[int] = []
    position = 0
    length = len(large)
    for value in small:
        position = _gallop_to(large, position, value)
        if position >= length:
            break
        if large[position] == value:
            result.append(value)
            position += 1
    return result


def intersect_adaptive(left: list[int], right: list[int]) -> list[int]:
    """Intersect, picking the kernel by size skew (identical results).

    Near-equal lengths take the linear merge; once one side is
    ``GALLOP_SKEW``× the other, galloping through the long side wins.
    """
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    if len(small) * GALLOP_SKEW <= len(large):
        return intersect_galloping(small, large)
    return intersect_sorted(left, right)


def intersect_count(left: list[int], right: list[int]) -> int:
    """``len(intersect_adaptive(left, right))`` without building the list.

    The facet aggregator's kernel: counts co-occurrence cardinalities
    against thousands of terms without materialising a single id list.
    """
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    count = 0
    if len(small) * GALLOP_SKEW <= len(large):
        position = 0
        length = len(large)
        for value in small:
            position = _gallop_to(large, position, value)
            if position >= length:
                break
            if large[position] == value:
                count += 1
                position += 1
        return count
    i = j = 0
    while i < len(small) and j < len(large):
        a, b = small[i], large[j]
        if a == b:
            count += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return count


def difference_galloping(left: list[int], right: list[int]) -> list[int]:
    """``left - right`` galloping through whichever side is longer.

    ``left`` small: gallop each of its values through ``right``.  ``right``
    small: gallop through ``left`` copying the untouched slices between the
    (few) removed values wholesale.
    """
    if not left or not right:
        return list(left)
    if len(left) <= len(right):
        result: list[int] = []
        position = 0
        length = len(right)
        for value in left:
            position = _gallop_to(right, position, value)
            if position >= length or right[position] != value:
                result.append(value)
        return result
    result = []
    start = 0
    length = len(left)
    for value in right:
        at = _gallop_to(left, start, value)
        result.extend(left[start:at])
        if at < length and left[at] == value:
            at += 1
        start = at
        if start >= length:
            break
    result.extend(left[start:])
    return result


def difference_adaptive(left: list[int], right: list[int]) -> list[int]:
    """``left - right``, picking the kernel by size skew (identical results)."""
    shorter, longer = min(len(left), len(right)), max(len(left), len(right))
    if shorter * GALLOP_SKEW <= longer:
        return difference_galloping(left, right)
    return difference_sorted(left, right)


# -------------------------------------------------------------------- results


@dataclass(frozen=True)
class QueryMatch:
    """One matching recipe: identity plus where the query's terms occurred.

    Attributes:
        doc_id: Position of the recipe in the indexed corpus (JSONL order).
        recipe_id: The recipe's own identifier.
        title: Recipe title.
        spans: ``"field:term" -> [[where, position], ...]`` for every
            positive term of the query that occurs in this recipe (negated
            terms contribute nothing — they matched by absence).
    """

    doc_id: int
    recipe_id: str
    title: str
    spans: dict[str, list]

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``/v1/search`` result shape)."""
        return {
            "doc_id": self.doc_id,
            "recipe_id": self.recipe_id,
            "title": self.title,
            "spans": self.spans,
        }


def _collect_spans(node, lookup, out: dict[str, list]) -> None:
    """Gather spans of every positive term via ``lookup(field, term)``."""
    if isinstance(node, Term):
        spans = lookup(node.field, node.normalized)
        if spans:
            out[f"{node.field}:{node.normalized}"] = spans
    elif isinstance(node, (And, Or)):
        for child in node.children:
            _collect_spans(child, lookup, out)
    # Not: matched by absence; nothing to point at.


def _resolve_terms(node, index: RecipeIndex, out: dict) -> None:
    """Resolve every positive term's posting list once (same traversal as
    :func:`_collect_spans`, so the lookup dict covers exactly its keys)."""
    if isinstance(node, Term):
        key = (node.field, node.normalized)
        if key not in out:
            out[key] = index.postings(node.field, node.normalized)
    elif isinstance(node, (And, Or)):
        for child in node.children:
            _resolve_terms(child, index, out)


# --------------------------------------------------------------------- engine


class QueryEngine:
    """Evaluates query trees against a :class:`RecipeIndex` — or per shard.

    Evaluation is pure posting-list algebra: ``AND`` intersects its positive
    children smallest-list-first and subtracts its negated children,
    ``OR`` unions, and a bare ``NOT`` complements against the doc universe.

    Over a :class:`~repro.index.sharding.ShardedRecipeIndex` the same
    algebra runs once per shard (boolean entity queries are per-document
    predicates, so a shard's answer over its own doc universe is exactly its
    slice of the global answer) and the sorted per-shard global doc-id
    streams are k-way merged back into corpus order.  Results — ids,
    titles *and* matched spans — are element-wise identical to the
    monolithic engine and to the brute-force scan; the property suite
    enforces all three.  On both paths the matching doc ids are truncated to
    ``limit`` *before* any span materialisation, so per-result work is
    bounded by ``limit``, never by the match count.

    ``rank=True`` turns :meth:`search` into BM25 top-k retrieval (see
    :mod:`repro.index.ranking`); :meth:`facets` aggregates match counts per
    term without materialising a single match.  ``workers > 1`` fans
    per-shard evaluation (boolean, ranked and facet) out over
    :func:`~repro.corpus.executor.ordered_parallel_map` threads and k-way
    heap-merges the per-shard answers — results stay element-wise identical
    to the serial path (``workers=1``, the default).
    """

    def __init__(
        self, index: "RecipeIndex | ShardedRecipeIndex", *, workers: int = 1
    ) -> None:
        self._index = index
        self._workers = max(1, int(workers))
        self._shard_engines = (
            [QueryEngine(shard) for shard in index.shards]
            if isinstance(index, ShardedRecipeIndex)
            else None
        )

    @property
    def index(self) -> "RecipeIndex | ShardedRecipeIndex":
        return self._index

    def doc_ids(self, query) -> list[int]:
        """Sorted doc ids matching ``query`` (string or AST)."""
        node = _as_node(query)
        if self._shard_engines is not None:
            return [global_id for global_id, _, _ in self._eval_sharded(node)]
        return self._eval(node)

    def execute(self, query, *, limit: int | None = None) -> list[QueryMatch]:
        """Matching recipes in doc order, with matched spans per recipe."""
        return self.search(query, limit=limit)[1]

    def count(self, query) -> int:
        """Number of matching recipes.

        A bare term answers straight from header metadata
        (:meth:`RecipeIndex.posting_count`; summed per shard on a manifest)
        — no posting decode, no global id-list merge.  Compound queries
        evaluate per shard and sum the per-shard cardinalities; the global
        doc-id stream is never built (each doc lives in exactly one shard,
        so the sum is exact).
        """
        node = _as_node(query)
        if isinstance(node, Term):
            if self._shard_engines is not None:
                # Tombstone-aware df: identical to posting_count (and as
                # metadata-cheap) when no deletes are pending compaction.
                return self._index.live_posting_count(node.field, node.value)
            return self._index.posting_count(node.field, node.value)
        if self._shard_engines is not None:
            return sum(self._map_shards(lambda i: len(self._live_eval(i, node))))
        return len(self._eval(node))

    def search(
        self,
        query,
        *,
        limit: int | None = None,
        rank: bool = False,
        params=None,
    ) -> tuple[int, list[QueryMatch]]:
        """One evaluation returning ``(total, limited matches)``.

        What the serving layer wants: the full match count plus at most
        ``limit`` materialised results, without evaluating the query twice.

        ``rank=True`` scores every matching doc with BM25
        (:mod:`repro.index.ranking`; ``params`` overrides the k1/b
        defaults) and returns the top ``limit``
        :class:`~repro.index.ranking.RankedMatch` objects best-first, ties
        on ascending doc id — element-wise identical across the monolithic,
        sharded and brute-force oracle paths.
        """
        node = _as_node(query)
        if limit is not None and limit < 0:
            raise QueryError("limit must not be negative")
        if rank:
            return self._search_ranked(node, limit=limit, params=params)
        if self._shard_engines is not None:
            selected = self._eval_sharded(node)
            total = len(selected)
            if limit is not None:
                selected = selected[:limit]
            return total, self._materialize_sharded(node, selected)
        ids = self._eval(node)
        total = len(ids)
        if limit is not None:
            ids = ids[:limit]
        return total, self._materialize(node, ids)

    def facets(
        self, query, fields, *, top: int | None = 10
    ) -> dict[str, list[tuple[str, int]]]:
        """Top facet terms co-occurring with the query's matches.

        For each requested field: ``[(term, count), ...]`` where ``count``
        is how many matching docs carry that term, ordered by ``(-count,
        term)`` and truncated to ``top`` per field.  Counts come from
        posting-list intersection cardinalities
        (:func:`~repro.index.ranking.facet_counts`) — no match is ever
        materialised.  Sharded: per-shard counts sum exactly (each doc
        lives in one shard); shards are counted with ``top=None`` so the
        global top-N cannot miss a term that is mid-pack in every shard.
        """
        from repro.index import ranking

        node = _as_node(query)
        if isinstance(fields, str):
            fields = (fields,)
        fields = list(fields)
        if not fields:
            raise QueryError("facets requires at least one field")
        for field in fields:
            if field not in FIELDS:
                raise QueryError(
                    f"unknown facet field {field!r}; expected one of {FIELDS}"
                )
        if top is not None and (
            not isinstance(top, int) or isinstance(top, bool) or top < 0
        ):
            raise QueryError("facet 'top' must be a non-negative integer")
        if self._shard_engines is not None:

            def shard_counts(shard_index: int) -> dict[str, list[tuple[str, int]]]:
                engine = self._shard_engines[shard_index]
                ids = self._live_eval(shard_index, node)
                return {
                    field: ranking.facet_counts(engine._index, ids, field, top=None)
                    for field in fields
                }

            per_shard = self._map_shards(shard_counts)
            result: dict[str, list[tuple[str, int]]] = {}
            for field in fields:
                totals: dict[str, int] = {}
                for counts in per_shard:
                    for term, count in counts[field]:
                        totals[term] = totals.get(term, 0) + count
                rows = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
                result[field] = rows[:top] if top is not None else rows
            return result
        ids = self._eval(node)
        return {
            field: ranking.facet_counts(self._index, ids, field, top=top)
            for field in fields
        }

    # ------------------------------------------------------- sharded internals

    def _map_shards(self, function) -> list:
        """``[function(shard_index) for every shard]``, threaded on request.

        With ``workers > 1`` the per-shard closures fan out over
        :func:`~repro.corpus.executor.ordered_parallel_map` threads (the
        engines share one in-memory index, so processes are not an option
        here; v2 shards release the GIL in zlib inflate and mmap page
        faults).  Results come back in shard order either way, so callers
        are oblivious to the mode.
        """
        count = len(self._shard_engines)
        if self._workers <= 1 or count <= 1:
            return [function(index) for index in range(count)]
        from repro.corpus.executor import ordered_parallel_map

        return list(
            ordered_parallel_map(
                function,
                range(count),
                workers=min(self._workers, count),
                threads=True,
            )
        )

    def _live_eval(self, shard_index: int, node) -> list[int]:
        """One shard's matching local ids, tombstoned docs masked out.

        Boolean queries are per-document predicates, so subtracting the
        shard's (sorted) dead locals *after* evaluation is exact — a bare
        ``NOT`` complements against the shard universe first and the dead
        docs are removed from that complement here.  With no tombstones
        the mask is a no-op and the underlying answer returns untouched.
        """
        ids = self._shard_engines[shard_index]._eval(node)
        dead = self._index.tombstoned_locals(shard_index)
        if dead and ids:
            ids = difference_adaptive(ids, dead)
        return ids

    def _eval_sharded(self, node) -> list[tuple[int, int, int]]:
        """Merged ``(global_id, shard, local_id)`` triples in corpus order."""

        def shard_stream(shard_index: int) -> list[tuple[int, int, int]]:
            global_ids = self._index.global_ids(shard_index)
            return [
                (global_ids[local], shard_index, local)
                for local in self._live_eval(shard_index, node)
            ]

        streams = self._map_shards(shard_stream)
        if len(streams) == 1:
            return streams[0]
        # Streams are ascending in global id (and ids are disjoint across
        # shards), so a k-way heap merge restores exact corpus order.
        return list(heapq.merge(*streams))

    def _search_ranked(self, node, *, limit, params):
        """BM25-ranked :meth:`search` (both the monolithic and sharded paths)."""
        from repro.index import ranking

        if self._shard_engines is not None:
            # Global statistics, so each shard scores its local docs to the
            # exact floats the monolithic engine would produce.  Live (not
            # raw) N / avgdl / df: tombstoned docs are out of the corpus as
            # far as BM25 is concerned, which makes every score bitwise
            # what a from-scratch build over the survivors computes.
            stats = ranking.CorpusStats(
                doc_count=self._index.live_doc_count,
                total_occurrences=self._index.live_total_occurrences(),
            )
            df = {
                (term.field, term.normalized): self._index.live_posting_count(
                    term.field, term.normalized
                )
                for term in ranking.positive_terms(node)
            }

            def shard_top(shard_index: int):
                engine = self._shard_engines[shard_index]
                ids = self._live_eval(shard_index, node)
                scores = ranking.Bm25Scorer(
                    engine._index, node, stats=stats, df=df, params=params
                ).scores(ids)
                global_ids = self._index.global_ids(shard_index)
                scored = [
                    (scores[i], global_ids[local], shard_index, local)
                    for i, local in enumerate(ids)
                ]
                key = lambda row: (-row[0], row[1])  # noqa: E731
                if limit is None:
                    return len(ids), sorted(scored, key=key)
                # Bounded per-shard heap: k rows per shard suffice — the
                # global top-k cannot contain a doc outside its shard's top-k.
                return len(ids), heapq.nsmallest(limit, scored, key=key)

            shard_results = self._map_shards(shard_top)
            total = sum(shard_total for shard_total, _ in shard_results)
            merged = heapq.merge(
                *(rows for _, rows in shard_results),
                key=lambda row: (-row[0], row[1]),
            )
            selected = list(merged if limit is None else islice(merged, limit))
            per_shard: dict[int, list[int]] = {}
            for _, _, shard_index, local in selected:
                per_shard.setdefault(shard_index, []).append(local)
            materialized = {
                shard_index: deque(
                    self._shard_engines[shard_index]._materialize(node, locals_)
                )
                for shard_index, locals_ in per_shard.items()
            }
            matches = [
                ranking.RankedMatch(
                    doc_id=global_id,
                    recipe_id=match.recipe_id,
                    title=match.title,
                    spans=match.spans,
                    score=score,
                )
                for score, global_id, shard_index, _ in selected
                for match in (materialized[shard_index].popleft(),)
            ]
            return total, matches
        ids = self._eval(node)
        total = len(ids)
        scores = ranking.Bm25Scorer(self._index, node, params=params).scores(ids)
        selected = ranking.select_top_k(zip(ids, scores), limit)
        base = self._materialize(node, [doc_id for doc_id, _ in selected])
        matches = [
            ranking.RankedMatch(
                doc_id=match.doc_id,
                recipe_id=match.recipe_id,
                title=match.title,
                spans=match.spans,
                score=score,
            )
            for match, (_, score) in zip(base, selected)
        ]
        return total, matches

    def _materialize_sharded(
        self, node, selected: list[tuple[int, int, int]]
    ) -> list[QueryMatch]:
        per_shard: dict[int, list[int]] = {}
        for _, shard_index, local in selected:
            per_shard.setdefault(shard_index, []).append(local)
        materialized = {
            shard_index: deque(self._shard_engines[shard_index]._materialize(node, locals_))
            for shard_index, locals_ in per_shard.items()
        }
        return [
            replace(materialized[shard_index].popleft(), doc_id=global_id)
            for global_id, shard_index, _ in selected
        ]

    # ------------------------------------------------------------- internals

    def _term_ids(self, term: Term) -> list[int]:
        posting = self._index.postings(term.field, term.value)
        # Copy: the evaluator's lists are the caller's to keep; the index's
        # posting arrays must never leak out mutable.
        return list(posting.ids) if posting is not None else []

    def _selectivity(self, node) -> int:
        """Upper-bound estimate of a node's result size, without evaluating.

        Term estimates come from :meth:`RecipeIndex.posting_count`, which on
        a lazy v2 index is header metadata — the planner orders work without
        decoding a single posting list.  Estimates only order the AND plan;
        intersection is commutative, so any order gives identical results.
        """
        if isinstance(node, Term):
            return self._index.posting_count(node.field, node.value)
        if isinstance(node, And):
            positives = [c for c in node.children if not isinstance(c, Not)]
            if positives:
                return min(self._selectivity(child) for child in positives)
            return self._index.doc_count
        if isinstance(node, Or):
            return min(
                self._index.doc_count,
                sum(self._selectivity(child) for child in node.children),
            )
        # Not: complement — could be anything up to the whole universe.
        return self._index.doc_count

    def _eval(self, node) -> list[int]:
        if isinstance(node, Term):
            return self._term_ids(node)
        if isinstance(node, Or):
            result: list[int] = []
            for child in node.children:
                result = union_sorted(result, self._eval(child))
            return result
        if isinstance(node, And):
            positives = [c for c in node.children if not isinstance(c, Not)]
            negatives = [c for c in node.children if isinstance(c, Not)]
            if positives:
                # Plan: evaluate the (estimated) most selective child first
                # and intersect upward, stopping as soon as the running
                # result empties — later children are then never evaluated
                # (on a lazy v2 index: never even decoded).
                positives.sort(key=self._selectivity)
                result = self._eval(positives[0])
                for child in positives[1:]:
                    if not result:
                        break
                    if isinstance(child, Term):
                        # Chunk-skipping path: only the term's blocks that
                        # overlap the running candidate range are decoded.
                        result = self._intersect_with_term(result, child)
                    else:
                        result = intersect_adaptive(result, self._eval(child))
            else:
                result = list(range(self._index.doc_count))
            for negative in negatives:
                if not result:
                    break
                result = difference_adaptive(result, self._eval(negative.child))
            return result
        if isinstance(node, Not):
            return difference_sorted(
                list(range(self._index.doc_count)), self._eval(node.child)
            )
        raise QueryError(f"not a query node: {node!r}")

    def _intersect_with_term(self, result: list[int], term: Term) -> list[int]:
        """``result ∩ term``, decoding only chunks the candidates can hit.

        The term's :meth:`~repro.index.builder.RecipeIndex.posting_blocks`
        view carries per-chunk ``(first_id, last_id)`` bounds from the v2
        skip headers; a chunk whose bound window holds no candidate is
        skipped without inflating a byte.  PR-6-era entries have no bounds
        (``(None, None)``) and simply decode — same answer, no skips.
        """
        blocks = self._index.posting_blocks(term.field, term.value)
        if blocks is None or not result:
            return []
        out: list[int] = []
        for k, (first, last) in enumerate(blocks.bounds):
            if first is None:
                candidates = result
            else:
                low = bisect_left(result, first)
                high = bisect_right(result, last, low)
                if low == high:
                    continue  # no candidate inside this chunk's id window
                candidates = result[low:high]
            out.extend(intersect_adaptive(candidates, blocks.block(k).ids))
        return out

    def _materialize(self, node, ids: list[int]) -> list[QueryMatch]:
        """Build the result objects: resolve each positive term's posting
        list once for the whole query, then only bisect per (term, doc)."""
        resolved: dict[tuple[str, str], PostingList | None] = {}
        _resolve_terms(node, self._index, resolved)

        def match(doc_id: int) -> QueryMatch:
            def lookup(field: str, normalized: str):
                posting = resolved[(field, normalized)]
                if posting is None:
                    return None
                at = bisect_left(posting.ids, doc_id)
                if at < len(posting.ids) and posting.ids[at] == doc_id:
                    return posting.spans[at]
                return None

            spans: dict[str, list] = {}
            _collect_spans(node, lookup, spans)
            doc = self._index.doc(doc_id)
            return QueryMatch(
                doc_id=doc_id,
                recipe_id=doc["recipe_id"],
                title=doc["title"],
                spans=spans,
            )

        return [match(doc_id) for doc_id in ids]


# --------------------------------------------------------------- brute force


def matches_recipe(query, recipe: StructuredRecipe) -> bool:
    """Evaluate ``query`` directly against one structured recipe."""
    return _matches(_as_node(query), extract_entities(recipe))


def _matches(node, entities: dict[str, dict[str, list]]) -> bool:
    if isinstance(node, Term):
        if node.field not in entities:
            raise QueryError(f"unknown query field {node.field!r}; expected one of {FIELDS}")
        return node.normalized in entities[node.field]
    if isinstance(node, And):
        return all(_matches(child, entities) for child in node.children)
    if isinstance(node, Or):
        return any(_matches(child, entities) for child in node.children)
    if isinstance(node, Not):
        return not _matches(node.child, entities)
    raise QueryError(f"not a query node: {node!r}")


def scan_recipes(
    recipes: Iterable[StructuredRecipe], query, *, limit: int | None = None
) -> list[QueryMatch]:
    """Brute-force scan: evaluate ``query`` against every recipe in order.

    Returns the same :class:`QueryMatch` objects (ids, titles *and* spans)
    an indexed :meth:`QueryEngine.execute` produces over the same corpus —
    the equivalence the property tests and the benchmark pin down.
    """
    node = _as_node(query)
    if limit is not None and limit < 0:
        raise QueryError("limit must not be negative")
    matches: list[QueryMatch] = []
    for doc_id, recipe in enumerate(recipes):
        if limit is not None and len(matches) >= limit:
            break
        entities = extract_entities(recipe)
        if not _matches(node, entities):
            continue
        spans: dict[str, list] = {}
        _collect_spans(node, lambda field, term: entities[field].get(term), spans)
        matches.append(
            QueryMatch(
                doc_id=doc_id,
                recipe_id=recipe.recipe_id,
                title=recipe.title,
                spans=spans,
            )
        )
    return matches


def scan_structured_jsonl(path: str | Path, query, *, limit: int | None = None) -> list[QueryMatch]:
    """Brute-force a structured-recipe JSONL file (parses every line)."""
    from repro.corpus.sink import iter_structured_jsonl

    return scan_recipes(iter_structured_jsonl(path), query, limit=limit)
