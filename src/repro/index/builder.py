"""Inverted index over a structured-recipe corpus.

The whole point of structuring recipes is to make the corpus *queryable*:
once ingredients, processes and utensils are named entities, "every recipe
that sautes tomatoes without garlic" is a posting-list intersection instead
of a corpus scan.  This module builds that index:

* :func:`extract_entities` defines the indexed view of one
  :class:`~repro.core.recipe_model.StructuredRecipe` — normalised entity
  terms per field, each with the spans (ingredient-record or event positions)
  where it occurs.  The brute-force matcher in :mod:`repro.index.query` uses
  the *same* function, so indexed and scanned answers agree by construction.
* :class:`IndexBuilder` streams recipes (typically
  :func:`~repro.corpus.sink.iter_structured_jsonl` output) and accumulates
  one sorted posting list per ``(field, term)``; doc ids are assigned in
  stream order, so the lists are sorted for free.
* :class:`RecipeIndex` is the immutable, queryable result.  It persists
  through the same hardened envelope as the pipeline bundles —
  ``{format, version, sha256, payload}``, written atomically — so indexes
  are first-class artifacts: checksummed, version-gated and hot-swappable
  through the serving registry.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.core.recipe_model import StructuredRecipe
from repro.errors import ConfigurationError, PersistenceError, QueryError
from repro.persistence import (
    check_payload_version,
    FORMAT_VERSION,
    open_artifact_buffer,
    parse_artifact,
    write_artifact,
)
from repro.text.normalize import normalize_phrase

__all__ = [
    "FIELDS",
    "INDEX_ARTIFACT_FORMAT",
    "IndexBuilder",
    "PostingBlocks",
    "PostingList",
    "RecipeIndex",
    "extract_entities",
    "load_index_bytes",
]

#: ``format`` marker of the index artifact envelope.
INDEX_ARTIFACT_FORMAT = "repro-recipe-index"

#: Queryable fields, each keyed by normalised entity terms.
FIELDS = ("ingredient", "process", "utensil", "title")


def extract_entities(recipe: StructuredRecipe) -> dict[str, dict[str, list[list]]]:
    """The indexed view of one recipe: field -> term -> occurrence spans.

    Terms are :func:`~repro.text.normalize.normalize_phrase` forms of the
    recipe's entities; a span is ``[where, position]`` addressing the
    occurrence inside the recipe document:

    * ``["ingredients", i]`` — the ``i``-th ingredient record (its canonical
      ``name``; records without a recognised name are not indexed);
    * ``["events", i]`` — the ``i``-th instruction event (detected
      ingredients, processes and utensils of that step);
    * ``["title", 0]`` — the recipe title (indexed whole and per token).

    Both the index builder and the brute-force query matcher call this
    function, which is what makes their answers identical by construction.
    """
    entities: dict[str, dict[str, list[list]]] = {field: {} for field in FIELDS}

    def add(field: str, raw: str, where: str, position: int) -> None:
        term = normalize_phrase(raw)
        if term:
            entities[field].setdefault(term, []).append([where, position])

    for position, record in enumerate(recipe.ingredients):
        add("ingredient", record.name, "ingredients", position)
    for position, event in enumerate(recipe.events):
        for name in event.ingredients:
            add("ingredient", name, "events", position)
        for process in event.processes:
            add("process", process, "events", position)
        for utensil in event.utensils:
            add("utensil", utensil, "events", position)
    title = normalize_phrase(recipe.title)
    if title:
        entities["title"].setdefault(title, []).append(["title", 0])
        for token in title.split(" "):
            if token != title:
                entities["title"].setdefault(token, []).append(["title", 0])
    return entities


@dataclass(frozen=True)
class PostingList:
    """One term's occurrences: sorted doc ids with aligned span groups.

    Attributes:
        ids: Strictly increasing doc ids containing the term.
        spans: ``spans[k]`` is the span list (see :func:`extract_entities`)
            of the term inside doc ``ids[k]``.
    """

    ids: list[int]
    spans: list[list[list]]

    def __len__(self) -> int:
        return len(self.ids)


@dataclass(frozen=True)
class PostingBlocks:
    """Chunk-granular view of one term's posting list, for skip-scans.

    An AND-intersection that already holds a candidate id range can consult
    :attr:`bounds` and decode only the blocks that overlap it.  A v1 index
    exposes its eager posting list as one block with exact bounds; a v2
    artifact maps each on-disk chunk to a block whose ``(first_id, last_id)``
    come straight from the header's skip metadata (``(None, None)`` for
    PR-6-era entries, which carried no bounds — such blocks are never
    skipped, only decoded).

    Attributes:
        count: Total postings across all blocks (header metadata, no decode).
        bounds: ``bounds[k]`` is ``(first_id, last_id)`` of block ``k``, each
            ``None`` when unknown.
        load: ``load(k)`` decodes block ``k`` into a :class:`PostingList`.
    """

    count: int
    bounds: list[tuple[int | None, int | None]]
    load: Callable[[int], PostingList]

    def __len__(self) -> int:
        return len(self.bounds)

    def block(self, k: int) -> PostingList:
        return self.load(k)


class RecipeIndex:
    """Immutable inverted index built by :class:`IndexBuilder`.

    Args:
        postings: field -> term -> :class:`PostingList`.
        docs: Per-doc metadata, ``docs[doc_id] == {"recipe_id", "title"}``.
        source: Provenance label (e.g. the JSONL path the index was built
            from); carried through the artifact for the stats endpoints.
    """

    #: Artifact kind this class materialises ("v1": eager JSON postings).
    #: :class:`~repro.index.codec.RecipeIndexV2` overrides it with "v2".
    kind = "v1"

    #: Lazily computed per-doc lengths (see :meth:`doc_lengths`).  A class
    #: default instead of ``__init__`` state so every subclass constructor
    #: (v2 does not chain) starts with an empty cache.
    _doc_lengths_cache: list[int] | None = None

    def __init__(
        self,
        postings: dict[str, dict[str, PostingList]],
        docs: list[dict],
        *,
        source: str = "",
    ) -> None:
        self._postings = postings
        self.docs = docs
        self.source = source

    # ----------------------------------------------------------------- access

    @property
    def doc_count(self) -> int:
        """Number of indexed recipes (doc ids are ``0 .. doc_count - 1``)."""
        return len(self.docs)

    def terms(self, field: str) -> list[str]:
        """Sorted terms indexed under ``field``."""
        return sorted(self._field(field))

    def postings(self, field: str, term: str) -> PostingList | None:
        """The posting list for a normalised ``term``, or ``None`` if absent.

        ``term`` is normalised with the same function the builder used, so
        callers may pass raw surface forms.
        """
        return self._field(field).get(normalize_phrase(term))

    def doc(self, doc_id: int) -> dict:
        """Metadata of one indexed recipe."""
        return self.docs[doc_id]

    def posting_count(self, field: str, term: str) -> int:
        """Length of a term's posting list (0 when absent).

        On a lazily decoded v2 index this reads header metadata without
        decoding the list, which is why the query planner orders AND
        children by it.
        """
        posting = self.postings(field, term)
        return len(posting.ids) if posting is not None else 0

    def posting_blocks(self, field: str, term: str) -> PostingBlocks | None:
        """Skip-scannable block view of a term's posting list (see class doc).

        A v1 index is fully decoded in memory, so the view is one block over
        the eager posting list with exact ``(first, last)`` bounds; the v2
        override maps header chunks without decoding any of them.
        """
        posting = self.postings(field, term)
        if posting is None:
            return None
        bounds = (posting.ids[0], posting.ids[-1]) if posting.ids else (None, None)
        return PostingBlocks(
            count=len(posting.ids), bounds=[bounds], load=lambda k: posting
        )

    def doc_lengths(self) -> list[int]:
        """Per-doc total entity occurrences — the BM25 document lengths.

        ``doc_lengths()[doc_id]`` counts every indexed occurrence (span) of
        every term in that doc, across all fields.  A v1 artifact does not
        persist this (its payload shape is frozen); it is derived lazily from
        the already-decoded postings on first use and cached.  The v2 format
        persists it as a dedicated doc-stats section, so the override there
        never touches the posting lists.
        """
        if self._doc_lengths_cache is None:
            lengths = [0] * self.doc_count
            for field in FIELDS:
                for posting in self._field(field).values():
                    for doc_id, group in zip(posting.ids, posting.spans):
                        lengths[doc_id] += len(group)
            self._doc_lengths_cache = lengths
        return self._doc_lengths_cache

    def total_occurrences(self) -> int:
        """Sum of :meth:`doc_lengths` — the corpus length BM25 averages over."""
        return sum(self.doc_lengths())

    @property
    def has_doc_stats(self) -> bool:
        """Whether doc lengths are available without decoding posting lists.

        Always true for a v1 index (its postings are already in memory); true
        for a v2 artifact only when it carries the doc-stats section —
        PR-6-era v2 artifacts do not, and ``index inspect`` flags them.
        """
        return True

    def stats(self) -> dict:
        """Index shape for the stats endpoints and CLI summaries."""
        return {
            "documents": self.doc_count,
            "source": self.source,
            "terms": {field: len(table) for field, table in self._postings.items()},
            "postings": sum(
                len(posting.ids)
                for table in self._postings.values()
                for posting in table.values()
            ),
            "format": self.kind,
        }

    def _field(self, field: str) -> dict[str, PostingList]:
        table = self._postings.get(field)
        if table is None:
            raise QueryError(f"unknown query field {field!r}; expected one of {FIELDS}")
        return table

    # ------------------------------------------------------------ persistence

    def to_payload(self) -> dict:
        """Serialise the index to a JSON-compatible payload."""
        return {
            "version": FORMAT_VERSION,
            "source": self.source,
            "docs": list(self.docs),
            "postings": {
                field: {
                    term: {"ids": posting.ids, "spans": posting.spans}
                    for term, posting in table.items()
                }
                for field, table in self._postings.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RecipeIndex":
        """Rebuild an index from :meth:`to_payload` output (version-gated)."""
        if not isinstance(payload, dict):
            raise PersistenceError(
                f"recipe-index payload must be a JSON object, got {type(payload).__name__}"
            )
        check_payload_version(payload, "recipe index")
        for field in ("docs", "postings"):
            if field not in payload:
                raise PersistenceError(f"recipe-index payload is missing its {field!r} field")
        postings = {
            field: {
                term: PostingList(ids=list(entry["ids"]), spans=list(entry["spans"]))
                for term, entry in payload["postings"].get(field, {}).items()
            }
            for field in FIELDS
        }
        return cls(postings, list(payload["docs"]), source=payload.get("source", ""))

    def save(self, path: str | Path, *, kind: str | None = None) -> None:
        """Atomically write the index as a checksummed artifact (see bundle).

        ``kind`` selects the on-disk representation: ``"v1"`` is the eager
        JSON payload, ``"v2"`` the compact binary posting format of
        :mod:`repro.index.codec` (delta+varint chunks behind an mmap'd
        lazy-decode load).  Defaults to the index's own :attr:`kind`, so a
        loaded artifact round-trips in its native format; pass the other
        kind to convert.
        """
        kind = self.kind if kind is None else kind
        if kind == "v1":
            write_artifact(path, self.to_payload(), format=INDEX_ARTIFACT_FORMAT)
        elif kind == "v2":
            from repro.index.codec import save_index_v2

            save_index_v2(self, path)
        else:
            raise PersistenceError(
                f"unknown index artifact kind {kind!r}; expected 'v1' or 'v2'"
            )

    @classmethod
    def load(cls, path: str | Path) -> "RecipeIndex":
        """Load and validate an index previously written by :meth:`save`.

        Dispatches on the artifact's format marker: v1 artifacts are parsed
        eagerly as before; v2 artifacts are mmap'd and decoded lazily (the
        return value is a :class:`~repro.index.codec.RecipeIndexV2`).
        """
        from repro.index.codec import is_v2_artifact, load_index_v2_buffer

        path = Path(path)
        buffer = open_artifact_buffer(path)
        if is_v2_artifact(buffer):
            return load_index_v2_buffer(buffer, source=str(path))
        return cls.loads(_decode_artifact_text(buffer, str(path)), source=str(path))

    @classmethod
    def loads(
        cls, text: str, source: str = "<index>", *, document: dict | None = None
    ) -> "RecipeIndex":
        """Validate and rebuild an index from artifact text already in hand.

        The positional ``source`` (error label) matches the registry loader
        signature, so ``ModelRegistry(loader=RecipeIndex.loads)`` manages
        index artifacts with the same hot-swap lifecycle as model bundles.
        ``document`` optionally forwards an existing ``json.loads(text)`` so
        dispatching callers never parse a large artifact twice.

        v2 artifacts arrive here as text when a text-oriented caller (the
        registry) read the file with ``errors="surrogateescape"``; the
        original bytes are recovered losslessly and decoded lazily.
        """
        from repro.index.codec import is_v2_artifact, load_index_v2_buffer

        if is_v2_artifact(text):
            data = text.encode("utf-8", errors="surrogateescape")
            return load_index_v2_buffer(data, source=source)
        payload = parse_artifact(
            text,
            format=INDEX_ARTIFACT_FORMAT,
            source=source,
            what="index artifact",
            document=document,
        )
        return cls.from_payload(payload)


def _decode_artifact_text(buffer, source: str) -> str:
    """Decode presumed-v1 artifact bytes, raising the canonical error on
    binary content (e.g. a v2 artifact whose format marker was tampered)."""
    try:
        return bytes(buffer[:]).decode("utf-8")
    except UnicodeDecodeError as error:
        raise PersistenceError(
            f"index artifact {source} is not valid UTF-8 (binary or corrupt): {error}"
        ) from error


def load_index_bytes(buffer, source: str = "<index>") -> RecipeIndex:
    """Open an index artifact from bytes already in hand (either kind).

    ``buffer`` is any bytes-like object — typically the mmap a caller just
    checksummed, so the very bytes that were verified are the bytes decoded.
    v2 artifacts stay in the buffer and decode lazily; v1 artifacts parse
    eagerly as before.
    """
    from repro.index.codec import is_v2_artifact, load_index_v2_buffer

    if is_v2_artifact(buffer):
        return load_index_v2_buffer(buffer, source=source)
    return RecipeIndex.loads(_decode_artifact_text(buffer, source), source=source)


class IndexBuilder:
    """Accumulates recipes into posting lists, one :meth:`add` at a time.

    Doc ids are assigned in arrival order, so every posting list is sorted
    by construction and :meth:`build` is a constant-time freeze: the built
    index takes ownership of the posting arrays, and the builder refuses
    further :meth:`add` calls (mutating them behind the index would break
    its immutability).  The builder streams: it holds the postings and
    per-doc metadata, never the recipes.
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, PostingList]] = {
            field: {} for field in FIELDS
        }
        self._docs: list[dict] = []
        self._built = False

    def add(self, recipe: StructuredRecipe, *, doc_id: int | None = None) -> int:
        """Index one recipe; returns its **local** doc id.

        ``doc_id`` optionally records a *global* corpus position in the doc
        metadata (``docs[local]["doc_id"]``).  Posting lists always use local
        positions; the sharded substrate uses the recorded global ids to
        merge per-shard answers back into corpus order.  Callers must add
        recipes in increasing global order for the mapping to stay sorted.
        """
        if self._built:
            raise ConfigurationError(
                "this IndexBuilder already built its index; create a new "
                "builder to index more recipes"
            )
        local_id = len(self._docs)
        metadata = {"recipe_id": recipe.recipe_id, "title": recipe.title}
        if doc_id is not None:
            metadata["doc_id"] = doc_id
        self._docs.append(metadata)
        for field, terms in extract_entities(recipe).items():
            table = self._postings[field]
            for term, spans in terms.items():
                posting = table.get(term)
                if posting is None:
                    posting = table[term] = PostingList(ids=[], spans=[])
                posting.ids.append(local_id)
                posting.spans.append(spans)
        return local_id

    def add_all(self, recipes: Iterable[StructuredRecipe]) -> int:
        """Index a recipe stream; returns the number of docs added."""
        added = 0
        for recipe in recipes:
            self.add(recipe)
            added += 1
        return added

    def build(self, *, source: str = "") -> RecipeIndex:
        """Freeze the accumulated postings into a :class:`RecipeIndex`.

        The builder is consumed: subsequent :meth:`add` calls raise.
        """
        self._built = True
        return RecipeIndex(self._postings, self._docs, source=source)

    @classmethod
    def build_from_jsonl(cls, path: str | Path) -> RecipeIndex:
        """Stream a structured-recipe JSONL file into a ready index."""
        from repro.corpus.sink import iter_structured_jsonl

        builder = cls()
        builder.add_all(iter_structured_jsonl(path))
        return builder.build(source=str(path))
