"""BM25 ranked retrieval and facet aggregation over entity postings.

Boolean queries say *which* recipes match; this module says *in what
order*.  Scoring is classic BM25 over the index's entity postings, with
every statistic read from artifact metadata instead of decoded postings:

* **tf** — the span-group length of ``(field, term, doc)``: how many times
  the entity occurs in that recipe (ingredient records, instruction events,
  title);
* **df** — the posting-list length, which is term-table header metadata on
  a v2 artifact (and the sum of per-shard headers on a manifest);
* **doc length** — the recipe's total entity occurrences, from the v2
  doc-stats section (v1 and PR-6 artifacts derive it lazily once).

One BM25 contribution of a term occurring ``tf`` times in a doc of length
``dl``::

    idf  = ln(1 + (N - df + 0.5) / (df + 0.5))
    s   += idf * tf * (k1 + 1) / (tf + k1 * (1 - b + b * dl / avgdl))

with ``k1 = 1.2``, ``b = 0.75`` by default.  Scores over a sharded index
use **global** statistics (manifest doc count, summed df, summed corpus
length), so a shard scores its local docs to the exact floats the
monolithic engine produces — contributions are summed in one canonical
order (the query's deduplicated positive-term order) on every path, which
is what lets the property suite assert sharded == monolithic ==
:func:`rank_recipes` (the brute-force oracle) element-wise, ties included.

Ties break on ascending doc id; selection is a bounded heap
(:func:`select_top_k`), never a full sort of the candidate set.

:func:`parallel_ranked_search` is the batch fan-out: worker processes each
load the shard manifest once (pool initializer), per-``(query, shard)``
tasks ship only query strings out and small top-k rows back, and the
parent k-way merges per-shard rows by ``(-score, doc_id)``.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass
from itertools import islice
from pathlib import Path

from repro.errors import QueryError
from repro.index.builder import FIELDS, RecipeIndex, extract_entities
from repro.index.query import (
    And,
    Not,
    Or,
    QueryMatch,
    Term,
    _as_node,
    _collect_spans,
    _matches,
    intersect_count,
    parse_query,
    render_query,
)

__all__ = [
    "Bm25Parameters",
    "Bm25Scorer",
    "CorpusStats",
    "DEFAULT_B",
    "DEFAULT_K1",
    "RankedMatch",
    "facet_counts",
    "idf",
    "parallel_ranked_search",
    "positive_terms",
    "rank_recipes",
    "select_top_k",
]

#: Default BM25 term-frequency saturation.
DEFAULT_K1 = 1.2
#: Default BM25 length-normalization strength.
DEFAULT_B = 0.75


@dataclass(frozen=True)
class Bm25Parameters:
    """The two BM25 knobs; the defaults are the standard literature values."""

    k1: float = DEFAULT_K1
    b: float = DEFAULT_B


@dataclass(frozen=True)
class CorpusStats:
    """Corpus-level normalization statistics BM25 scores against.

    For a sharded index these must be the **global** numbers (the manifest's
    doc count, every shard's occurrences) — handing a shard its local stats
    would score the same doc differently than the monolithic engine.
    """

    doc_count: int
    total_occurrences: int

    @property
    def avg_doc_length(self) -> float:
        return self.total_occurrences / self.doc_count if self.doc_count else 0.0

    @classmethod
    def of(cls, index) -> "CorpusStats":
        """Read the stats off an index (monolithic or sharded — both expose
        ``doc_count`` and ``total_occurrences()`` from artifact metadata)."""
        return cls(
            doc_count=index.doc_count, total_occurrences=index.total_occurrences()
        )


def idf(doc_count: int, df: int) -> float:
    """BM25 inverse document frequency (the +1 form, never negative)."""
    return math.log(1.0 + (doc_count - df + 0.5) / (df + 0.5))


def positive_terms(node) -> list[Term]:
    """Deduplicated positive terms of a query, in traversal order.

    The traversal order is the canonical summation order every scorer and
    the oracle share, which is what makes their floats bitwise-comparable.
    Terms under ``NOT`` match by absence — they carry no tf evidence and
    contribute no score (mirroring :func:`~repro.index.query._collect_spans`,
    which skips them for the same reason).
    """
    out: list[Term] = []
    seen: set[tuple[str, str]] = set()

    def walk(n) -> None:
        if isinstance(n, Term):
            key = (n.field, n.normalized)
            if key not in seen:
                seen.add(key)
                out.append(n)
        elif isinstance(n, (And, Or)):
            for child in n.children:
                walk(child)

    walk(node)
    return out


@dataclass(frozen=True)
class RankedMatch(QueryMatch):
    """A :class:`QueryMatch` with its BM25 score attached."""

    score: float = 0.0

    def to_dict(self) -> dict:
        return {**super().to_dict(), "score": self.score}


def select_top_k(scored, k: int | None):
    """Best ``k`` of ``(doc_id, score)`` pairs by ``(-score, doc_id)``.

    ``heapq.nsmallest`` keeps a bounded k-element heap over the candidate
    stream — O(n log k), never a full sort.  ``k=None`` ranks everything.
    Ties (bitwise-equal scores) come out in ascending doc id, so every
    evaluation path agrees on order, not just membership.
    """
    key = lambda pair: (-pair[1], pair[0])  # noqa: E731 - tiny sort key
    if k is None:
        return sorted(scored, key=key)
    return heapq.nsmallest(k, scored, key=key)


class Bm25Scorer:
    """Scores the matching docs of one index against a query.

    Args:
        index: The index whose (local) doc ids will be scored.
        node: Query AST or string; only its positive terms score.
        stats: Corpus stats to normalize against.  Defaults to the index's
            own — pass the *global* stats when ``index`` is one shard.
        df: ``(field, normalized_term) -> document frequency`` override;
            same rule: global counts for a shard.  Defaults to the index's
            posting counts.
        params: BM25 parameters.
    """

    def __init__(
        self,
        index,
        node,
        *,
        stats: CorpusStats | None = None,
        df: dict[tuple[str, str], int] | None = None,
        params: Bm25Parameters | None = None,
    ) -> None:
        self._index = index
        self._params = params if params is not None else Bm25Parameters()
        self._stats = stats if stats is not None else CorpusStats.of(index)
        weights: list[tuple[Term, float]] = []
        for term in positive_terms(_as_node(node)):
            frequency = (
                df[(term.field, term.normalized)]
                if df is not None
                else index.posting_count(term.field, term.normalized)
            )
            if frequency:
                weights.append((term, idf(self._stats.doc_count, frequency)))
        self._weights = weights

    def scores(self, ids: list[int]) -> list[float]:
        """BM25 scores aligned with ``ids`` (sorted local doc ids).

        Per doc, term contributions accumulate in the canonical positive-term
        order (the outer loop), so the floating-point sum is identical across
        the monolithic, sharded and oracle paths.  A matching doc containing
        none of the positive terms (e.g. it matched through a ``NOT``)
        scores exactly ``0.0``.
        """
        scores = [0.0] * len(ids)
        if not ids or not self._weights:
            return scores
        position = {doc_id: i for i, doc_id in enumerate(ids)}
        lengths = self._index.doc_lengths()
        k1, b = self._params.k1, self._params.b
        avgdl = self._stats.avg_doc_length
        for term, weight in self._weights:
            posting = self._index.postings(term.field, term.normalized)
            if posting is None:
                continue
            if len(posting.ids) <= len(ids):
                for at, doc_id in enumerate(posting.ids):
                    i = position.get(doc_id)
                    if i is None:
                        continue
                    tf = len(posting.spans[at])
                    norm = k1 * (1.0 - b + b * (lengths[doc_id] / avgdl)) if avgdl else k1
                    scores[i] += weight * (tf * (k1 + 1.0)) / (tf + norm)
            else:
                pids = posting.ids
                for i, doc_id in enumerate(ids):
                    at = bisect_left(pids, doc_id)
                    if at < len(pids) and pids[at] == doc_id:
                        tf = len(posting.spans[at])
                        norm = (
                            k1 * (1.0 - b + b * (lengths[doc_id] / avgdl))
                            if avgdl
                            else k1
                        )
                        scores[i] += weight * (tf * (k1 + 1.0)) / (tf + norm)
        return scores


# ---------------------------------------------------------------- the oracle


def rank_recipes(
    recipes,
    query,
    *,
    limit: int | None = None,
    params: Bm25Parameters | None = None,
) -> tuple[int, list[RankedMatch]]:
    """Brute-force ranked retrieval: score every recipe directly.

    The reference the property suite holds the engine to: statistics are
    recomputed from the raw recipes via the same
    :func:`~repro.index.builder.extract_entities` view the builder indexes,
    contributions sum in the same canonical term order, ties break on doc
    id.  Returns ``(total_matches, top_limit_matches)``.
    """
    node = _as_node(query)
    params = params if params is not None else Bm25Parameters()
    recipes = list(recipes)
    entities_list = [extract_entities(recipe) for recipe in recipes]
    lengths = [
        sum(len(spans) for terms in entities.values() for spans in terms.values())
        for entities in entities_list
    ]
    stats = CorpusStats(doc_count=len(recipes), total_occurrences=sum(lengths))
    weights: list[tuple[Term, float]] = []
    for term in positive_terms(node):
        frequency = sum(
            1 for entities in entities_list if term.normalized in entities[term.field]
        )
        if frequency:
            weights.append((term, idf(stats.doc_count, frequency)))
    k1, b = params.k1, params.b
    avgdl = stats.avg_doc_length
    scored: list[tuple[int, float]] = []
    for doc_id, entities in enumerate(entities_list):
        if not _matches(node, entities):
            continue
        score = 0.0
        for term, weight in weights:
            spans = entities[term.field].get(term.normalized)
            if not spans:
                continue
            tf = len(spans)
            norm = k1 * (1.0 - b + b * (lengths[doc_id] / avgdl)) if avgdl else k1
            score += weight * (tf * (k1 + 1.0)) / (tf + norm)
        scored.append((doc_id, score))
    total = len(scored)
    matches = []
    for doc_id, score in select_top_k(scored, limit):
        entities = entities_list[doc_id]
        spans: dict[str, list] = {}
        _collect_spans(node, lambda field, term: entities[field].get(term), spans)
        recipe = recipes[doc_id]
        matches.append(
            RankedMatch(
                doc_id=doc_id,
                recipe_id=recipe.recipe_id,
                title=recipe.title,
                spans=spans,
                score=score,
            )
        )
    return total, matches


# --------------------------------------------------------------------- facets


def facet_counts(
    index: RecipeIndex, ids: list[int], field: str, *, top: int | None = 10
) -> list[tuple[str, int]]:
    """Count matching docs per term of ``field`` — no match materialisation.

    ``ids`` are the (sorted, local) matching doc ids; the result is
    ``[(term, count), ...]`` ordered by ``(-count, term)`` and truncated to
    ``top`` (``None`` keeps every non-zero term — what a sharded caller
    needs before summing globally).  Counts are posting-list intersection
    *cardinalities* (:func:`~repro.index.query.intersect_count`, galloping
    on skew); when the match set is the whole doc universe the header's
    posting counts answer outright.  Terms are visited in descending
    posting-count order so that, once ``top`` counts are banked and the next
    upper bound cannot beat the worst of them, the remaining (strictly
    smaller) terms are never decoded at all.
    """
    if field not in FIELDS:
        raise QueryError(f"unknown facet field {field!r}; expected one of {FIELDS}")
    universe = len(ids) == index.doc_count
    candidates = sorted(
        ((index.posting_count(field, term), term) for term in index.terms(field)),
        key=lambda pair: (-pair[0], pair[1]),
    )
    rows: list[tuple[int, str]] = []
    kept: list[int] = []  # min-heap of the top counts banked so far
    if top == 0:
        return []
    for bound, term in candidates:
        if top is not None and len(kept) == top and bound < kept[0]:
            break  # every later term's count <= bound < current top-N floor
        if not ids:
            break
        if universe:
            count = bound
        else:
            posting = index.postings(field, term)
            count = intersect_count(ids, posting.ids) if posting is not None else 0
        if not count:
            continue
        rows.append((count, term))
        if top is not None:
            if len(kept) < top:
                heapq.heappush(kept, count)
            elif count > kept[0]:
                heapq.heapreplace(kept, count)
    rows.sort(key=lambda pair: (-pair[0], pair[1]))
    if top is not None:
        rows = rows[:top]
    return [(term, count) for count, term in rows]


# ---------------------------------------------------- process-parallel search

#: Per-process query state, loaded once by :func:`_initialize_rank_worker`.
_worker_state: dict = {}


def _initialize_rank_worker(manifest_path: str, params: tuple) -> None:
    # Mirror of executor._initialize_worker's failure discipline: an
    # exception escaping a Pool initializer respawns workers forever, so
    # capture it and let the first task re-raise into the parent.
    try:
        from repro.index.query import QueryEngine
        from repro.index.sharding import ShardedRecipeIndex

        index = ShardedRecipeIndex.load(manifest_path)
        _worker_state["index"] = index
        _worker_state["engines"] = [QueryEngine(shard) for shard in index.shards]
        # Live statistics: tombstoned docs are out of N / avgdl, exactly as
        # the in-process sharded engine scores them (identical to raw stats
        # when no deletes are pending compaction).
        _worker_state["stats"] = CorpusStats(
            doc_count=index.live_doc_count,
            total_occurrences=index.live_total_occurrences(),
        )
        _worker_state["params"] = Bm25Parameters(*params)
        _worker_state.pop("error", None)
    except BaseException as error:  # noqa: BLE001 - must reach the parent
        _worker_state["error"] = error


def _rank_shard_task(task: tuple) -> tuple:
    """Score one (query, shard) pair; returns its top-k rows.

    The row stream out of a worker is tiny and picklable: ``(score,
    global_doc_id, match_dict)`` triples already sorted by the merge key.
    """
    error = _worker_state.get("error")
    if error is not None:
        raise error
    query_index, shard_index, query_text, k = task
    index = _worker_state["index"]
    engine = _worker_state["engines"][shard_index]
    params = _worker_state["params"]
    node = parse_query(query_text)
    df = {
        (term.field, term.normalized): index.live_posting_count(
            term.field, term.normalized
        )
        for term in positive_terms(node)
    }
    ids = engine._eval(node)
    dead = index.tombstoned_locals(shard_index)
    if dead and ids:
        from repro.index.query import difference_adaptive

        ids = difference_adaptive(ids, dead)
    scores = Bm25Scorer(
        engine.index, node, stats=_worker_state["stats"], df=df, params=params
    ).scores(ids)
    global_ids = index.global_ids(shard_index)
    scored = [(global_ids[local], scores[i]) for i, local in enumerate(ids)]
    top = select_top_k(scored, k)
    locals_by_global = {global_ids[local]: local for local in ids}
    matched = engine._materialize(node, [locals_by_global[gid] for gid, _ in top])
    rows = [
        (
            score,
            global_id,
            {**match.to_dict(), "doc_id": global_id, "score": score},
        )
        for (global_id, score), match in zip(top, matched)
    ]
    return query_index, shard_index, len(ids), rows


def parallel_ranked_search(
    manifest_path: str | Path,
    queries,
    *,
    k: int,
    workers: int = 1,
    mp_context=None,
    params: Bm25Parameters | None = None,
) -> list[tuple[int, list[RankedMatch]]]:
    """Batch ranked top-k over a shard manifest, fanned out per shard.

    One task per ``(query, shard)`` runs in a worker pool whose processes
    each load the manifest **once** (pool initializer) — IPC carries query
    strings out and top-k rows back, never postings.  The parent k-way
    heap-merges each query's per-shard rows by ``(-score, doc_id)``, so the
    result is element-wise identical to
    ``QueryEngine(ShardedRecipeIndex.load(manifest_path)).search(q,
    limit=k, rank=True)`` — the ``workers <= 1`` path runs the very same
    task code in-process and is the determinism reference.

    Returns one ``(total_matches, top_k_matches)`` pair per query, in query
    order.
    """
    from repro.corpus.executor import ordered_parallel_map
    from repro.index.sharding import ShardedRecipeIndex

    if not isinstance(k, int) or isinstance(k, bool) or k < 0:
        raise QueryError("k must be a non-negative integer")
    params = params if params is not None else Bm25Parameters()
    manifest_path = str(manifest_path)
    queries = [
        query if isinstance(query, str) else render_query(query) for query in queries
    ]
    num_shards = ShardedRecipeIndex.load(manifest_path).shard_count
    tasks = [
        (query_index, shard_index, query, k)
        for query_index, query in enumerate(queries)
        for shard_index in range(num_shards)
    ]
    if workers <= 1:
        _initialize_rank_worker(manifest_path, (params.k1, params.b))
        results = [_rank_shard_task(task) for task in tasks]
    else:
        results = list(
            ordered_parallel_map(
                _rank_shard_task,
                tasks,
                workers=workers,
                mp_context=mp_context,
                initializer=_initialize_rank_worker,
                initargs=(manifest_path, (params.k1, params.b)),
            )
        )
    by_query: dict[int, list[tuple[int, list]]] = defaultdict(list)
    for query_index, _shard_index, shard_total, rows in results:
        by_query[query_index].append((shard_total, rows))
    answers: list[tuple[int, list[RankedMatch]]] = []
    for query_index in range(len(queries)):
        chunks = by_query[query_index]
        total = sum(shard_total for shard_total, _ in chunks)
        merged = heapq.merge(
            *(rows for _, rows in chunks), key=lambda row: (-row[0], row[1])
        )
        matches = [
            RankedMatch(
                doc_id=payload["doc_id"],
                recipe_id=payload["recipe_id"],
                title=payload["title"],
                spans=payload["spans"],
                score=payload["score"],
            )
            for _, _, payload in islice(merged, k)
        ]
        answers.append((total, matches))
    return answers
