"""Sharded recipe indexes: parallel builds, merge/compaction, deltas.

A monolithic :class:`~repro.index.builder.RecipeIndex` is rebuilt from
scratch on every corpus change and is bounded by one process's memory.  This
module partitions the index instead:

* :func:`shard_for` assigns every document to one of ``N`` base shards by a
  **stable hash of its recipe id** (SHA-256, so the assignment is identical
  across processes, platforms and ``PYTHONHASHSEED`` values);
* each shard is an ordinary :class:`RecipeIndex` whose doc metadata carries
  the document's **global** corpus position (``docs[local]["doc_id"]``), so
  per-shard answers can be merged back into exact corpus order;
* a :class:`ShardManifest` artifact (the same checksummed
  ``{format, version, sha256, payload}`` envelope as every other artifact)
  lists the shard files with their byte-level SHA-256, doc counts, global
  doc-id ranges and a monotonically increasing **generation** — the manifest
  is the single atomic commit point: shard files are immutable once written
  (new generations get new file names), so a reader of any manifest always
  sees a consistent set of shards;
* :func:`build_sharded_index` builds the base shards **in parallel** over
  :func:`~repro.corpus.executor.ordered_parallel_map` (one self-contained
  task per shard);
* :func:`add_jsonl` appends new documents as a **delta shard** without
  touching the base shards (an incremental update is one shard build plus a
  manifest rewrite, not a full rebuild);
* :func:`merge_shards` is the k-way merge/compaction path: fold every base
  and delta shard into ``K`` fresh base shards, or into one monolithic
  :class:`RecipeIndex` whose payload is identical to what a from-scratch
  :class:`~repro.index.builder.IndexBuilder` build would have produced;
* :func:`delete_docs` records deletions as a **tombstone shard** (a small
  artifact listing dead global doc ids) — readers mask tombstoned documents
  out of every query path, and the next :func:`merge_shards` drops them for
  good, renumbering the survivors so the compacted output is byte-identical
  to a from-scratch build over the surviving documents;
* every manifest rewrite goes through an exclusive lock file plus a
  load-generation compare-and-swap, so two racing writers cannot both
  publish the same generation (the loser gets a
  :class:`~repro.errors.PersistenceError` and must reload);
* the manifest optionally carries an **ingest offset journal**
  (``ingest``: source path -> committed byte offset) so the continuous
  ingestion daemon in :mod:`repro.ingest` resumes exactly once after a
  crash — the atomic manifest commit is also the offset commit.

Query evaluation over a :class:`ShardedRecipeIndex` lives in
:class:`repro.index.query.QueryEngine`, which evaluates per shard and merges
the sorted global doc-id streams — element-wise identical to the monolithic
engine and to the brute-force scan, which the property suite enforces.
"""

from __future__ import annotations

import contextlib
import hashlib
import heapq
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.recipe_model import StructuredRecipe
from repro.corpus.executor import ordered_parallel_map
from repro.corpus.reader import iter_jsonl
from repro.errors import ConfigurationError, DataError, PersistenceError
from repro.index.builder import (
    FIELDS,
    IndexBuilder,
    PostingList,
    RecipeIndex,
    load_index_bytes,
)
from repro.persistence import (
    FORMAT_VERSION,
    check_payload_version,
    file_sha256,
    open_artifact_buffer,
    parse_artifact,
    write_artifact,
)

__all__ = [
    "MANIFEST_ARTIFACT_FORMAT",
    "TOMBSTONE_ARTIFACT_FORMAT",
    "ShardEntry",
    "ShardManifest",
    "ShardedRecipeIndex",
    "add_jsonl",
    "build_sharded_index",
    "commit_update",
    "delete_docs",
    "load_index_artifact",
    "load_index_path",
    "merge_shards",
    "migrate_manifest",
    "shard_for",
]

#: ``format`` marker of the shard-manifest artifact envelope.
MANIFEST_ARTIFACT_FORMAT = "repro-shard-manifest"

#: ``format`` marker of a tombstone shard artifact (dead global doc ids).
TOMBSTONE_ARTIFACT_FORMAT = "repro-tombstone-shard"

_SHARD_KINDS = ("base", "delta", "tombstone")

#: How long a writer waits for the manifest's exclusive lock file before
#: giving up (a crashed writer leaves a stale lock; the error says so).
_LOCK_TIMEOUT_S = 10.0
_LOCK_POLL_S = 0.01

#: On-disk representations a shard artifact can use (see
#: :meth:`repro.index.builder.RecipeIndex.save`).
_SHARD_FORMATS = ("v1", "v2")


def shard_for(recipe_id: str, num_shards: int) -> int:
    """The base shard owning ``recipe_id`` (stable across processes).

    The assignment hashes the recipe id with SHA-256 rather than Python's
    ``hash`` so it never depends on ``PYTHONHASHSEED`` — the same document
    lands in the same shard no matter which process (or machine) built it.
    """
    if num_shards < 1:
        raise ConfigurationError("num_shards must be at least 1")
    digest = hashlib.sha256(str(recipe_id).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


# ------------------------------------------------------------------- manifest


@dataclass(frozen=True)
class ShardEntry:
    """One shard file as recorded by the manifest.

    Attributes:
        path: Shard artifact file name, relative to the manifest's directory
            (shards always live next to their manifest).
        sha256: SHA-256 of the shard artifact's exact bytes; verified on
            every manifest load, so a manifest can never be served with a
            shard file it was not written against.
        docs: Documents in the shard.
        doc_ids: ``(lowest, highest)`` global doc id in the shard, or
            ``None`` when the shard is empty.
        kind: ``"base"`` (hash-partitioned), ``"delta"`` (incremental
            append, folded into base shards by compaction) or
            ``"tombstone"`` (deleted global doc ids, masked at query time
            and dropped for good at the next compaction).  A tombstone
            entry's ``docs`` counts tombstoned ids, which do **not**
            contribute to the manifest's ``doc_count``.
        format: On-disk representation of the shard artifact — ``"v1"``
            (eager JSON postings) or ``"v2"`` (compact binary posting format,
            mmap'd and decoded lazily).  Per-entry so a rolling migration can
            publish manifests mixing both kinds.
    """

    path: str
    sha256: str
    docs: int
    doc_ids: tuple[int, int] | None
    kind: str
    format: str = "v1"

    def to_payload(self) -> dict:
        payload = {
            "path": self.path,
            "sha256": self.sha256,
            "docs": self.docs,
            "doc_ids": list(self.doc_ids) if self.doc_ids is not None else None,
            "kind": self.kind,
        }
        if self.format != "v1":
            # Omitted for v1 so all-v1 manifests are byte-identical to those
            # written before the field existed (the golden fixtures pin this).
            payload["format"] = self.format
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardEntry":
        if not isinstance(payload, dict):
            raise PersistenceError(
                f"shard-manifest entry must be a JSON object, got {type(payload).__name__}"
            )
        for field in ("path", "sha256", "docs", "kind"):
            if field not in payload:
                raise PersistenceError(
                    f"shard-manifest entry is missing its {field!r} field"
                )
        if payload["kind"] not in _SHARD_KINDS:
            raise PersistenceError(
                f"shard-manifest entry has unknown kind {payload['kind']!r}; "
                f"expected one of {_SHARD_KINDS}"
            )
        format = payload.get("format", "v1")
        if format not in _SHARD_FORMATS:
            raise PersistenceError(
                f"shard-manifest entry has unknown format {format!r}; "
                f"expected one of {_SHARD_FORMATS}"
            )
        doc_ids = payload.get("doc_ids")
        return cls(
            path=str(payload["path"]),
            sha256=str(payload["sha256"]),
            docs=int(payload["docs"]),
            doc_ids=(int(doc_ids[0]), int(doc_ids[1])) if doc_ids else None,
            kind=payload["kind"],
            format=format,
        )


@dataclass(frozen=True)
class ShardManifest:
    """The sharded index's commit record: which shard files are live.

    Attributes:
        num_shards: Hash modulus of the base shards (what :func:`shard_for`
            was called with when they were built).
        generation: 1-based, bumps on every update/compaction.  New
            generations write new shard file names, so older manifests keep
            resolving against untouched files — the manifest rewrite is the
            only commit point.
        doc_count: Total documents across every shard (global doc ids are
            ``0 .. doc_count - 1``).
        source: Provenance label (the JSONL the base build consumed).
        entries: Base shards in shard order, then delta and tombstone
            shards in append order.
        ingest: Optional offset journal of the continuous ingestion daemon
            (absolute source path -> committed byte offset).  Committed in
            the same atomic manifest write as the delta shard built from
            those bytes, so a restarted tailer resumes exactly once.
    """

    num_shards: int
    generation: int
    doc_count: int
    source: str
    entries: tuple[ShardEntry, ...]
    ingest: dict[str, int] | None = None

    # ----------------------------------------------------------------- shape

    @property
    def shard_count(self) -> int:
        return len(self.entries)

    @property
    def delta_count(self) -> int:
        return sum(1 for entry in self.entries if entry.kind == "delta")

    @property
    def tombstone_shard_count(self) -> int:
        return sum(1 for entry in self.entries if entry.kind == "tombstone")

    @property
    def tombstone_count(self) -> int:
        """Tombstoned (deleted) documents still awaiting compaction."""
        return sum(entry.docs for entry in self.entries if entry.kind == "tombstone")

    @property
    def live_doc_count(self) -> int:
        """Documents that survive tombstone masking (what queries can see)."""
        return self.doc_count - self.tombstone_count

    def describe(self) -> dict:
        """JSON-ready summary (CLI output and the stats endpoints)."""
        return {
            "num_shards": self.num_shards,
            "shards": self.shard_count,
            "deltas": self.delta_count,
            "tombstones": self.tombstone_count,
            "generation": self.generation,
            "documents": self.doc_count,
            "live_documents": self.live_doc_count,
            "source": self.source,
        }

    # ------------------------------------------------------------ persistence

    def to_payload(self) -> dict:
        payload = {
            "version": FORMAT_VERSION,
            "num_shards": self.num_shards,
            "generation": self.generation,
            "doc_count": self.doc_count,
            "source": self.source,
            "shards": [entry.to_payload() for entry in self.entries],
        }
        if self.ingest:
            # Omitted when empty so manifests written before continuous
            # ingestion existed stay byte-identical (golden fixtures).
            payload["ingest"] = dict(self.ingest)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardManifest":
        if not isinstance(payload, dict):
            raise PersistenceError(
                f"shard-manifest payload must be a JSON object, got {type(payload).__name__}"
            )
        check_payload_version(payload, "shard manifest")
        for field in ("num_shards", "generation", "doc_count", "shards"):
            if field not in payload:
                raise PersistenceError(
                    f"shard-manifest payload is missing its {field!r} field"
                )
        entries = tuple(ShardEntry.from_payload(entry) for entry in payload["shards"])
        # Tombstone entries count *deleted* ids, not stored documents, so
        # they stay out of the doc_count consistency check.
        listed = sum(entry.docs for entry in entries if entry.kind != "tombstone")
        if listed != int(payload["doc_count"]):
            raise PersistenceError(
                f"shard manifest records doc_count {payload['doc_count']} but its "
                f"shards list {listed} documents; the manifest is inconsistent"
            )
        ingest = payload.get("ingest")
        if ingest is not None:
            if not isinstance(ingest, dict) or not all(
                isinstance(source, str) and isinstance(offset, int) and offset >= 0
                for source, offset in ingest.items()
            ):
                raise PersistenceError(
                    "shard-manifest 'ingest' field must map source paths to "
                    "non-negative byte offsets"
                )
        return cls(
            num_shards=int(payload["num_shards"]),
            generation=int(payload["generation"]),
            doc_count=int(payload["doc_count"]),
            source=payload.get("source", ""),
            entries=entries,
            ingest=dict(ingest) if ingest else None,
        )

    def save(self, path: str | Path) -> None:
        """Atomically write the manifest artifact (the swap commit point)."""
        write_artifact(path, self.to_payload(), format=MANIFEST_ARTIFACT_FORMAT)

    @classmethod
    def load(cls, path: str | Path) -> "ShardManifest":
        path = Path(path)
        return cls.loads(path.read_text(encoding="utf-8"), source=str(path))

    @classmethod
    def loads(
        cls, text: str, source: str = "<manifest>", *, document: dict | None = None
    ) -> "ShardManifest":
        payload = parse_artifact(
            text,
            format=MANIFEST_ARTIFACT_FORMAT,
            source=source,
            what="shard manifest",
            document=document,
        )
        return cls.from_payload(payload)


# ---------------------------------------------------------- tombstone shards


def _save_tombstone_shard(path: str | Path, doc_ids: list[int]) -> None:
    """Write a tombstone shard artifact (sorted dead global doc ids)."""
    write_artifact(
        path,
        {"version": FORMAT_VERSION, "doc_ids": list(doc_ids)},
        format=TOMBSTONE_ARTIFACT_FORMAT,
    )


def _parse_tombstone_shard(text: str, source: str) -> list[int]:
    """Checksum-verify and decode a tombstone shard to its doc-id list."""
    payload = parse_artifact(
        text,
        format=TOMBSTONE_ARTIFACT_FORMAT,
        source=source,
        what="tombstone shard",
    )
    check_payload_version(payload, "tombstone shard")
    doc_ids = payload.get("doc_ids")
    if not isinstance(doc_ids, list) or not all(
        isinstance(doc_id, int) for doc_id in doc_ids
    ):
        raise PersistenceError(
            f"tombstone shard {source} must carry 'doc_ids': a list of integers"
        )
    return doc_ids


def _count_common(sorted_a: list[int], sorted_b: list[int]) -> int:
    """How many values two ascending integer lists share (linear merge)."""
    count = i = j = 0
    len_a, len_b = len(sorted_a), len(sorted_b)
    while i < len_a and j < len_b:
        a, b = sorted_a[i], sorted_b[j]
        if a == b:
            count += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return count


# ------------------------------------------------------- exclusive publishing


def _manifest_lock_path(manifest_path: Path) -> Path:
    return manifest_path.with_name(manifest_path.name + ".lock")


def _current_generation(manifest_path: Path) -> int:
    """The committed generation at ``manifest_path`` (0 when absent/unreadable)."""
    if not manifest_path.exists():
        return 0
    try:
        return ShardManifest.load(manifest_path).generation
    except (PersistenceError, OSError):
        return 0


@contextlib.contextmanager
def _publish_guard(manifest_path: Path, *, expected_generation: int | None):
    """Exclusive critical section around writing one manifest generation.

    Acquires an ``O_CREAT | O_EXCL`` lock file next to the manifest (the
    portable stdlib-only mutual exclusion between processes), then — with
    the lock held — re-reads the committed generation and refuses to
    proceed unless it still equals ``expected_generation`` (the
    compare-and-swap that makes two racing writers unable to both publish
    the same generation).  Shard files for the new generation are written
    *inside* the guard, so a CAS loser never clobbers the winner's
    same-named files.  ``expected_generation=None`` skips the CAS (lock
    only) for writers targeting a fresh or unreadable path.
    """
    lock_path = _manifest_lock_path(manifest_path)
    deadline = time.monotonic() + _LOCK_TIMEOUT_S
    while True:
        try:
            descriptor = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            if time.monotonic() >= deadline:
                raise PersistenceError(
                    f"timed out waiting for manifest write lock {lock_path}; "
                    "another writer holds it (or crashed and left it stale — "
                    "remove the lock file to recover)"
                ) from None
            time.sleep(_LOCK_POLL_S)
    try:
        with contextlib.suppress(OSError):
            os.write(descriptor, f"{os.getpid()}\n".encode("ascii"))
        os.close(descriptor)
        if expected_generation is not None:
            current = _current_generation(manifest_path)
            if current != expected_generation:
                raise PersistenceError(
                    f"shard manifest {manifest_path} was modified concurrently: "
                    f"expected generation {expected_generation}, found "
                    f"{current}; reload the manifest and retry"
                )
        yield
    finally:
        with contextlib.suppress(OSError):
            os.unlink(lock_path)


# -------------------------------------------------------------- sharded index


class ShardedRecipeIndex:
    """A set of shard :class:`RecipeIndex` objects behind one manifest.

    Every document lives in exactly one shard and carries its global corpus
    position in the shard's doc metadata, so boolean queries (which are
    per-document predicates) can be evaluated per shard and merged back into
    corpus order — see :class:`repro.index.query.QueryEngine`.

    ``tombstones`` are the global doc ids the manifest's tombstone shards
    declare dead: still physically present in their shards, but masked out
    of every query path (and excluded from the live doc/occurrence counts
    that feed BM25) until the next compaction drops them for good.
    """

    def __init__(
        self,
        shards: list[RecipeIndex],
        manifest: ShardManifest,
        tombstones: "list[int] | tuple[int, ...] | set[int] | frozenset[int]" = (),
    ) -> None:
        self._shards = list(shards)
        self.manifest = manifest
        self._tombstones = sorted(set(tombstones))
        self._tombstone_set = frozenset(self._tombstones)
        # Per-shard global doc ids, aligned with the shard's local positions
        # (ascending by construction: builders add in global order).  Built
        # lazily per shard: a v2 shard's doc table only inflates when a query
        # actually touches that shard, keeping manifest opens O(header).
        self._global_ids: list[list[int] | None] = [None] * len(self._shards)
        # Per-shard sorted *local* ids of tombstoned docs, same laziness.
        self._dead_locals: list[list[int] | None] = [None] * len(self._shards)

    # ----------------------------------------------------------------- access

    @property
    def shards(self) -> list[RecipeIndex]:
        return list(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def generation(self) -> int:
        return self.manifest.generation

    @property
    def doc_count(self) -> int:
        """Total indexed recipes (global doc ids are ``0 .. doc_count - 1``)."""
        return self.manifest.doc_count

    @property
    def source(self) -> str:
        return self.manifest.source

    # ------------------------------------------------------------- tombstones

    @property
    def tombstones(self) -> tuple[int, ...]:
        """Sorted global doc ids declared dead by the manifest's tombstones."""
        return tuple(self._tombstones)

    @property
    def tombstone_count(self) -> int:
        return len(self._tombstones)

    @property
    def live_doc_count(self) -> int:
        """Documents queries can see (``doc_count`` minus tombstoned)."""
        return self.manifest.doc_count - len(self._tombstones)

    def is_tombstoned(self, global_id: int) -> bool:
        return global_id in self._tombstone_set

    def tombstoned_locals(self, shard_index: int) -> list[int]:
        """Sorted local ids of one shard's tombstoned docs (lazy, cached)."""
        dead = self._dead_locals[shard_index]
        if dead is None:
            if not self._tombstones:
                dead = self._dead_locals[shard_index] = []
            else:
                dead = self._dead_locals[shard_index] = [
                    local
                    for local, global_id in enumerate(self.global_ids(shard_index))
                    if global_id in self._tombstone_set
                ]
        return dead

    def global_ids(self, shard_index: int) -> list[int]:
        """Ascending global doc ids of one shard, aligned with local ids."""
        ids = self._global_ids[shard_index]
        if ids is None:
            # Idempotent under concurrent readers: both compute the same
            # list and a single atomic assignment wins.
            ids = self._global_ids[shard_index] = [
                doc.get("doc_id", local)
                for local, doc in enumerate(self._shards[shard_index].docs)
            ]
        return ids

    @property
    def shard_formats(self) -> list[str]:
        """Per-shard artifact format ("v1"/"v2"), in manifest entry order."""
        return [shard.kind for shard in self._shards]

    def posting_count(self, field: str, term: str) -> int:
        """Global document frequency of a term: the sum of per-shard counts.

        Each document lives in exactly one shard, so the sum is exact — and
        on v2 shards each addend is header metadata, so the global df behind
        BM25's idf costs no posting decode at all.
        """
        return sum(shard.posting_count(field, term) for shard in self._shards)

    def total_occurrences(self) -> int:
        """Global corpus length (sum of per-shard doc-stats totals).

        With v2 shards carrying the doc-stats section this reads one header
        field per shard; v1 (and PR-6 v2) shards derive theirs lazily once.
        """
        return sum(shard.total_occurrences() for shard in self._shards)

    def live_posting_count(self, field: str, term: str) -> int:
        """Document frequency among **live** docs (tombstones excluded).

        With no tombstones this is exactly :meth:`posting_count` (and as
        cheap).  With tombstones pending compaction, each shard subtracts
        how many of the term's postings fall on its dead locals — both
        lists are sorted, so one linear merge per shard.
        """
        if not self._tombstones:
            return self.posting_count(field, term)
        total = 0
        for shard_index, shard in enumerate(self._shards):
            count = shard.posting_count(field, term)
            if not count:
                continue
            dead = self.tombstoned_locals(shard_index)
            if dead:
                posting = shard.postings(field, term)
                if posting is not None:
                    count -= _count_common(posting.ids, dead)
            total += count
        return total

    def live_total_occurrences(self) -> int:
        """Corpus token count over live docs only (BM25's ``N * avgdl``).

        Matches what :meth:`total_occurrences` reports on a from-scratch
        build over the surviving documents, so ranked scores under
        tombstone masking are bitwise-identical to post-compaction scores.
        """
        total = self.total_occurrences()
        if not self._tombstones:
            return total
        for shard_index, shard in enumerate(self._shards):
            dead = self.tombstoned_locals(shard_index)
            if dead:
                lengths = shard.doc_lengths()
                total -= sum(lengths[local] for local in dead)
        return total

    def stats(self) -> dict:
        """Shape + provenance for the stats endpoints and CLI summaries."""
        lazy_shards = {
            str(index): shard.stats()["lazy"]
            for index, shard in enumerate(self._shards)
            if shard.kind == "v2"
        }
        lazy = {
            "hits": sum(entry["hits"] for entry in lazy_shards.values()),
            "misses": sum(entry["misses"] for entry in lazy_shards.values()),
            "decoded_terms": sum(
                entry["decoded_terms"] for entry in lazy_shards.values()
            ),
            "shards": lazy_shards,
        }
        return {
            "documents": self.doc_count,
            "live_documents": self.live_doc_count,
            "tombstones": self.tombstone_count,
            "tombstone_shards": self.manifest.tombstone_shard_count,
            "shards": self.shard_count,
            "base_shards": self.shard_count - self.manifest.delta_count,
            "delta_shards": self.manifest.delta_count,
            "generation": self.generation,
            "num_shards": self.manifest.num_shards,
            "source": self.source,
            "shard_formats": {
                format: self.shard_formats.count(format)
                for format in sorted(set(self.shard_formats))
            },
            "postings": sum(shard.stats()["postings"] for shard in self._shards),
            "terms": {
                # Distinct terms per field: a term indexed in several shards
                # is still one term (summing would inflate across shards and
                # shrink after compaction with no content change).
                field: len(set().union(*(shard.terms(field) for shard in self._shards)))
                if self._shards
                else 0
                for field in FIELDS
            },
            # Cache efficacy of the lazily decoded (v2) shards, aggregated
            # and per shard — what serve's /stats surfaces in production.
            "lazy": lazy,
        }

    # ------------------------------------------------------------ persistence

    @classmethod
    def load(cls, path: str | Path) -> "ShardedRecipeIndex":
        """Load a manifest and every shard it lists, verifying each checksum."""
        path = Path(path)
        return cls.loads(path.read_text(encoding="utf-8"), source=str(path))

    @classmethod
    def loads(
        cls,
        text: str,
        source: str = "<manifest>",
        *,
        document: dict | None = None,
    ) -> "ShardedRecipeIndex":
        """Rebuild from manifest text; shard paths resolve next to ``source``.

        The positional ``source`` matches the registry loader signature, so
        a :class:`~repro.serve.registry.ModelRegistry` hot-swaps whole
        manifests with the same lifecycle as any other artifact: the swap is
        atomic because the replacement's shards are fully loaded and
        checksum-verified before the registry record changes.
        """
        manifest = ShardManifest.loads(text, source=source, document=document)
        base = Path(source).parent if source != "<manifest>" else Path(".")
        shards: list[RecipeIndex] = []
        tombstones: set[int] = set()
        for entry in manifest.entries:
            entry_path = Path(entry.path)
            shard_path = entry_path if entry_path.is_absolute() else base / entry_path
            try:
                buffer = open_artifact_buffer(shard_path)
            except OSError as error:
                raise PersistenceError(
                    f"shard manifest {source} lists shard {entry.path!r} but it "
                    f"cannot be read: {error}"
                ) from error
            # Hash the mapped bytes directly — no copy of the file contents,
            # and the verified bytes are the very bytes decoded below.
            actual = hashlib.sha256(buffer).hexdigest()
            if actual != entry.sha256:
                raise PersistenceError(
                    f"shard artifact {shard_path} does not match its manifest "
                    f"checksum (recorded {entry.sha256!r}, recomputed {actual!r}); "
                    "the manifest and shard are out of sync"
                )
            if entry.kind == "tombstone":
                doc_ids = _parse_tombstone_shard(
                    bytes(buffer).decode("utf-8"), str(shard_path)
                )
                if len(doc_ids) != entry.docs:
                    raise PersistenceError(
                        f"tombstone shard {shard_path} lists {len(doc_ids)} doc "
                        f"ids but the manifest records {entry.docs}"
                    )
                tombstones.update(doc_ids)
                continue
            shard = load_index_bytes(buffer, source=str(shard_path))
            if shard.kind != entry.format:
                raise PersistenceError(
                    f"shard artifact {shard_path} is a {shard.kind} artifact but "
                    f"the manifest records format {entry.format!r}; the manifest "
                    "and shard are out of sync"
                )
            if shard.doc_count != entry.docs:
                raise PersistenceError(
                    f"shard artifact {shard_path} holds {shard.doc_count} documents "
                    f"but the manifest records {entry.docs}"
                )
            shards.append(shard)
        return cls(shards, manifest, tombstones)

    # ----------------------------------------------------------------- merges

    def _term_streams(self, field: str) -> dict[str, list[list[tuple[int, list]]]]:
        """term -> one ``(global_id, spans)`` stream per shard holding it."""
        streams: dict[str, list[list[tuple[int, list]]]] = {}
        for shard_index, shard in enumerate(self._shards):
            gids = self.global_ids(shard_index)
            for term, posting in shard._field(field).items():
                streams.setdefault(term, []).append(
                    [
                        (gids[local], spans)
                        for local, spans in zip(posting.ids, posting.spans)
                    ]
                )
        return streams

    def _docs_in_global_order(self) -> list[tuple[int, dict]]:
        streams = [
            list(zip(self.global_ids(shard_index), shard.docs))
            for shard_index, shard in enumerate(self._shards)
        ]
        return list(heapq.merge(*streams, key=lambda pair: pair[0]))

    def to_monolithic(self, *, source: str = "") -> RecipeIndex:
        """K-way merge every shard into one monolithic :class:`RecipeIndex`.

        Tombstoned documents are dropped and the survivors renumbered
        ``0 .. live_doc_count - 1`` in global order, so the result's payload
        is identical to what a from-scratch :class:`IndexBuilder` run over
        the surviving corpus produces (the property suite pins this) —
        compaction and rebuild are interchangeable.
        """
        merged_docs = [
            (global_id, doc)
            for global_id, doc in self._docs_in_global_order()
            if global_id not in self._tombstone_set
        ]
        position = {
            global_id: index for index, (global_id, _) in enumerate(merged_docs)
        }
        docs = [
            {key: value for key, value in doc.items() if key != "doc_id"}
            for _, doc in merged_docs
        ]
        postings: dict[str, dict[str, PostingList]] = {field: {} for field in FIELDS}
        for field in FIELDS:
            table = postings[field]
            for term, streams in self._term_streams(field).items():
                merged = (
                    heapq.merge(*streams, key=lambda pair: pair[0])
                    if len(streams) > 1
                    else streams[0]
                )
                ids: list[int] = []
                spans: list[list] = []
                for global_id, span_group in merged:
                    renumbered = position.get(global_id)
                    if renumbered is None:  # tombstoned: resolved at merge
                        continue
                    ids.append(renumbered)
                    spans.append(list(span_group))
                if ids:
                    # A term whose every occurrence was tombstoned vanishes
                    # entirely, exactly as in a from-scratch build.
                    table[term] = PostingList(ids=ids, spans=spans)
        return RecipeIndex(postings, docs, source=source)

    def repartition(
        self, num_shards: int, *, source: str | None = None
    ) -> list[RecipeIndex]:
        """Fold every base and delta shard into ``num_shards`` fresh base
        shards (stable hash partitioning).  Tombstoned documents are
        dropped and the survivors renumbered ``0 .. live_doc_count - 1`` in
        global order — the compacted shards are byte-identical to a
        from-scratch :func:`build_sharded_index` over the surviving
        corpus.  ``source`` overrides the provenance label baked into each
        shard (default: this index's own source)."""
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        label = source if source is not None else self.source
        buckets: list[list[tuple[int, dict]]] = [[] for _ in range(num_shards)]
        next_id = 0
        for global_id, doc in self._docs_in_global_order():
            if global_id in self._tombstone_set:
                continue
            target = shard_for(doc["recipe_id"], num_shards)
            metadata = {key: value for key, value in doc.items() if key != "doc_id"}
            metadata["doc_id"] = next_id
            buckets[target].append((global_id, metadata))
            next_id += 1
        local_of: dict[int, tuple[int, int]] = {}
        target_docs: list[list[dict]] = []
        for target, bucket in enumerate(buckets):
            docs = []
            for local, (global_id, metadata) in enumerate(bucket):
                local_of[global_id] = (target, local)
                docs.append(metadata)
            target_docs.append(docs)
        target_postings = [
            {field: {} for field in FIELDS} for _ in range(num_shards)
        ]
        for field in FIELDS:
            for term, streams in self._term_streams(field).items():
                merged = (
                    heapq.merge(*streams, key=lambda pair: pair[0])
                    if len(streams) > 1
                    else streams[0]
                )
                for global_id, span_group in merged:
                    placement = local_of.get(global_id)
                    if placement is None:  # tombstoned: resolved at merge
                        continue
                    target, local = placement
                    table = target_postings[target][field]
                    posting = table.get(term)
                    if posting is None:
                        posting = table[term] = PostingList(ids=[], spans=[])
                    posting.ids.append(local)
                    posting.spans.append(list(span_group))
        return [
            RecipeIndex(
                target_postings[target],
                target_docs[target],
                source=f"{label}#shard{target}/{num_shards}",
            )
            for target in range(num_shards)
        ]


# ---------------------------------------------------------------- shard build


def _shard_file_name(stem: str, generation: int, label: str) -> str:
    return f"{stem}.g{generation}.{label}.json"


def _entry_for(
    shard: RecipeIndex, path: str | Path, *, kind: str, format: str = "v1"
) -> ShardEntry:
    if shard.doc_count:
        doc_ids = (shard.docs[0]["doc_id"], shard.docs[-1]["doc_id"])
    else:
        doc_ids = None
    return ShardEntry(
        path=Path(path).name,
        sha256=file_sha256(path),
        docs=shard.doc_count,
        doc_ids=doc_ids,
        kind=kind,
        format=format,
    )


def _check_shard_format(format: str) -> None:
    if format not in _SHARD_FORMATS:
        raise ConfigurationError(
            f"unknown shard artifact format {format!r}; expected one of {_SHARD_FORMATS}"
        )


def _build_shard_task(task: tuple) -> ShardEntry:
    """Build and save one base shard from structured JSONL (pool task).

    Self-contained so :func:`ordered_parallel_map` can run it in a worker
    process: streams the file, keeps only the documents
    :func:`shard_for` assigns to this shard, records each one's global doc
    id (its position in the full stream), and writes the shard artifact.
    """
    input_path, shard_index, num_shards, output_path, format = task
    builder = IndexBuilder()
    documents = iter_jsonl(input_path, json.loads, what="structured recipe")
    for global_id, document in enumerate(documents):
        if not isinstance(document, dict):
            raise DataError(
                f"{input_path}: structured recipe {global_id} is not a JSON object"
            )
        if shard_for(str(document.get("recipe_id", "")), num_shards) != shard_index:
            continue
        try:
            recipe = StructuredRecipe.from_dict(document)
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(
                f"{input_path}: malformed structured recipe {global_id}: {error}"
            ) from error
        builder.add(recipe, doc_id=global_id)
    shard = builder.build(source=f"{input_path}#shard{shard_index}/{num_shards}")
    shard.save(output_path, kind=format)
    return _entry_for(shard, output_path, kind="base", format=format)


def build_sharded_index(
    input_path: str | Path,
    manifest_path: str | Path,
    *,
    num_shards: int,
    workers: int = 1,
    mp_context=None,
    format: str = "v1",
) -> ShardManifest:
    """Partition a structured-recipe JSONL into ``num_shards`` base shards.

    Shard artifacts are written next to ``manifest_path`` (named
    ``<stem>.g<generation>.s<k>.json``) and built concurrently when
    ``workers > 1`` — one :func:`ordered_parallel_map` task per shard.  Each
    task is a self-contained pass over the input (it json-parses every line
    but only materialises and indexes its own documents), trading aggregate
    parse work for shared-nothing tasks that ship no recipes over IPC.  The
    manifest is written last, and rebuilding over an existing manifest bumps
    its generation so live shard files are never overwritten — a crash
    mid-build never publishes a partial index and never corrupts the
    previous one.  Returns the saved manifest; load it with
    :class:`ShardedRecipeIndex.load` to query.
    """
    if num_shards < 1:
        raise ConfigurationError("num_shards must be at least 1")
    _check_shard_format(format)
    manifest_path = Path(manifest_path)
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    generation = 1
    expected: int | None = 0
    if manifest_path.exists():
        try:
            generation = ShardManifest.load(manifest_path).generation + 1
            expected = generation - 1
        except (PersistenceError, OSError):
            # Not a readable manifest: nothing tracks shard files here, so
            # generation 1 names cannot clobber a live generation (and
            # there is no committed generation to compare-and-swap on).
            expected = None
    tasks = [
        (
            str(input_path),
            shard_index,
            num_shards,
            str(
                manifest_path.parent
                / _shard_file_name(manifest_path.stem, generation, f"s{shard_index}")
            ),
            format,
        )
        for shard_index in range(num_shards)
    ]
    entries = list(
        ordered_parallel_map(
            _build_shard_task,
            tasks,
            workers=min(workers, num_shards),
            mp_context=mp_context,
        )
    )
    manifest = ShardManifest(
        num_shards=num_shards,
        generation=generation,
        doc_count=sum(entry.docs for entry in entries),
        source=str(input_path),
        entries=tuple(entries),
    )
    with _publish_guard(manifest_path, expected_generation=expected):
        manifest.save(manifest_path)
    return manifest


# --------------------------------------------------------- incremental update


def _existing_tombstones(manifest_path: Path, manifest: ShardManifest) -> set[int]:
    """Doc ids already tombstoned by the manifest's tombstone shards."""
    dead: set[int] = set()
    for entry in manifest.entries:
        if entry.kind != "tombstone":
            continue
        entry_path = Path(entry.path)
        shard_path = (
            entry_path if entry_path.is_absolute() else manifest_path.parent / entry_path
        )
        dead.update(
            _parse_tombstone_shard(
                shard_path.read_text(encoding="utf-8"), str(shard_path)
            )
        )
    return dead


def commit_update(
    manifest_path: str | Path,
    *,
    recipes=None,
    source: str = "<delta>",
    tombstone_doc_ids=None,
    ingest_state: dict[str, int] | None = None,
    expected_generation: int | None = None,
    format: str = "v1",
) -> ShardManifest:
    """Commit one manifest generation: delta shard, tombstones, offsets.

    The write-path workhorse behind :func:`add_jsonl`, :func:`delete_docs`
    and the :mod:`repro.ingest` daemon.  Any combination of

    * ``recipes`` — an iterable of :class:`StructuredRecipe` indexed into
      one new delta shard (global doc ids continue after ``doc_count``);
    * ``tombstone_doc_ids`` — global ids recorded in one new tombstone
      shard (already-tombstoned ids are dropped silently, unknown ids
      raise :class:`~repro.errors.DataError`);
    * ``ingest_state`` — a replacement offset journal for the tailer

    is published as a **single** generation bump under the manifest write
    lock, so readers see the delta, its deletes and the offsets together
    or not at all.  ``expected_generation`` additionally pins the
    generation the caller computed its update against (e.g. resolved doc
    ids): if the manifest has moved on, a
    :class:`~repro.errors.PersistenceError` is raised before anything is
    written.  With nothing to commit the manifest is returned unchanged.
    """
    _check_shard_format(format)
    manifest_path = Path(manifest_path)
    manifest = ShardManifest.load(manifest_path)
    if expected_generation is not None and manifest.generation != expected_generation:
        raise PersistenceError(
            f"shard manifest {manifest_path} was modified concurrently: "
            f"expected generation {expected_generation}, found "
            f"{manifest.generation}; reload the manifest and retry"
        )
    generation = manifest.generation + 1

    delta = None
    if recipes is not None:
        builder = IndexBuilder()
        next_id = manifest.doc_count
        for offset, recipe in enumerate(recipes):
            builder.add(recipe, doc_id=next_id + offset)
        delta = builder.build(source=source)

    new_doc_count = manifest.doc_count + (delta.doc_count if delta is not None else 0)
    new_dead: list[int] = []
    if tombstone_doc_ids is not None:
        requested = sorted(set(int(doc_id) for doc_id in tombstone_doc_ids))
        out_of_range = [
            doc_id for doc_id in requested if doc_id < 0 or doc_id >= new_doc_count
        ]
        if out_of_range:
            raise DataError(
                f"cannot tombstone doc ids {out_of_range}: global doc ids run "
                f"0 .. {new_doc_count - 1}"
            )
        already_dead = _existing_tombstones(manifest_path, manifest)
        new_dead = [doc_id for doc_id in requested if doc_id not in already_dead]

    if delta is None and not new_dead and (
        ingest_state is None or ingest_state == (manifest.ingest or {})
    ):
        return manifest  # nothing to publish

    entries = list(manifest.entries)
    with _publish_guard(manifest_path, expected_generation=manifest.generation):
        # Shard files are written inside the guard: a CAS loser aborts
        # above without ever clobbering the winner's same-named files.
        if delta is not None:
            delta_path = manifest_path.parent / _shard_file_name(
                manifest_path.stem, generation, "delta"
            )
            delta.save(delta_path, kind=format)
            entries.append(_entry_for(delta, delta_path, kind="delta", format=format))
        if new_dead:
            tombstone_path = manifest_path.parent / _shard_file_name(
                manifest_path.stem, generation, "t"
            )
            _save_tombstone_shard(tombstone_path, new_dead)
            entries.append(
                ShardEntry(
                    path=tombstone_path.name,
                    sha256=file_sha256(tombstone_path),
                    docs=len(new_dead),
                    doc_ids=(new_dead[0], new_dead[-1]),
                    kind="tombstone",
                )
            )
        updated = ShardManifest(
            num_shards=manifest.num_shards,
            generation=generation,
            doc_count=new_doc_count,
            source=manifest.source,
            entries=tuple(entries),
            ingest=dict(ingest_state)
            if ingest_state is not None
            else manifest.ingest,
        )
        updated.save(manifest_path)
    return updated


def add_jsonl(
    manifest_path: str | Path, input_path: str | Path, *, format: str = "v1"
) -> ShardManifest:
    """Append a structured-recipe JSONL as a delta shard (incremental update).

    New documents get global doc ids continuing after the current corpus
    (``doc_count ..``), are indexed into a single new delta shard artifact
    (written in ``format``, independently of the base shards' formats), and
    the manifest is atomically rewritten with the delta appended and the
    generation bumped.  Base shards are untouched; run :func:`merge_shards`
    to fold accumulated deltas back into hash-partitioned base shards.
    Publication takes the manifest write lock and compare-and-swaps on the
    loaded generation, so two racing appenders cannot both commit the same
    generation — the loser raises :class:`~repro.errors.PersistenceError`.
    """
    from repro.corpus.sink import iter_structured_jsonl

    return commit_update(
        manifest_path,
        recipes=iter_structured_jsonl(input_path),
        source=str(input_path),
        format=format,
    )


def delete_docs(
    manifest_path: str | Path,
    *,
    doc_ids=None,
    recipe_ids=None,
) -> ShardManifest:
    """Tombstone documents by global doc id and/or recipe id.

    ``recipe_ids`` resolve to **every live document** carrying that recipe
    id (an id with no live match raises
    :class:`~repro.errors.DataError`); ``doc_ids`` are used as-is.  The
    union is recorded as one new tombstone shard under a bumped generation
    — queries mask the documents out immediately, the next
    :func:`merge_shards` drops them for good.  Deleting an
    already-tombstoned doc id is a no-op; when nothing new is tombstoned
    the manifest is returned unchanged (no generation bump).
    """
    manifest_path = Path(manifest_path)
    dead: set[int] = set(int(doc_id) for doc_id in doc_ids) if doc_ids else set()
    index = ShardedRecipeIndex.load(manifest_path)
    if recipe_ids:
        live_of: dict[str, list[int]] = {}
        for shard_index, shard in enumerate(index.shards):
            gids = index.global_ids(shard_index)
            for local, doc in enumerate(shard.docs):
                global_id = gids[local]
                if not index.is_tombstoned(global_id):
                    live_of.setdefault(str(doc.get("recipe_id", "")), []).append(
                        global_id
                    )
        for recipe_id in recipe_ids:
            matches = live_of.get(str(recipe_id))
            if not matches:
                raise DataError(
                    f"recipe id {recipe_id!r} matches no live document in "
                    f"{manifest_path}"
                )
            dead.update(matches)
    return commit_update(
        manifest_path,
        tombstone_doc_ids=sorted(dead),
        expected_generation=index.generation,
    )


# ---------------------------------------------------------- merge / compaction


def merge_shards(
    index: ShardedRecipeIndex,
    *,
    num_shards: int | None = None,
    manifest_path: str | Path | None = None,
    source: str | None = None,
    format: str = "v1",
) -> "ShardedRecipeIndex | RecipeIndex":
    """Compact a sharded index.

    With ``num_shards=None`` the k-way merge produces **one monolithic**
    :class:`RecipeIndex` (saved to ``manifest_path`` as a plain index
    artifact when given).  With ``num_shards=K`` every base and delta shard
    is folded into ``K`` fresh hash-partitioned base shards written next to
    ``manifest_path`` under a bumped generation; the manifest rewrite is the
    atomic commit, and previous-generation shard files are left untouched so
    concurrent readers of the old manifest stay consistent.  ``format``
    selects the on-disk representation of everything written ("v1"/"v2") —
    compaction doubles as a bulk format migration.

    Tombstoned documents are **resolved** here: dropped from the merged
    output, with survivors renumbered so the compacted artifacts are
    byte-identical to a from-scratch build over the surviving corpus.  The
    tailer's offset journal (``manifest.ingest``) is carried through
    unchanged, and publication compare-and-swaps on the input index's
    generation under the manifest write lock — a compaction racing a
    concurrent append loses cleanly with a
    :class:`~repro.errors.PersistenceError` instead of erasing the delta.
    """
    _check_shard_format(format)
    if num_shards is None:
        monolithic = index.to_monolithic(
            source=source if source is not None else index.source
        )
        if manifest_path is not None:
            monolithic.save(manifest_path, kind=format)
        return monolithic
    if manifest_path is None:
        raise ConfigurationError(
            "merging to shards needs a manifest_path to write the compacted "
            "shards next to"
        )
    manifest_path = Path(manifest_path)
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    generation = index.generation + 1
    shards = index.repartition(num_shards, source=source)
    expected = index.generation if manifest_path.exists() else None
    with _publish_guard(manifest_path, expected_generation=expected):
        entries = []
        for shard_index, shard in enumerate(shards):
            shard_path = manifest_path.parent / _shard_file_name(
                manifest_path.stem, generation, f"s{shard_index}"
            )
            shard.save(shard_path, kind=format)
            entries.append(_entry_for(shard, shard_path, kind="base", format=format))
        manifest = ShardManifest(
            num_shards=num_shards,
            generation=generation,
            doc_count=index.live_doc_count,
            source=source if source is not None else index.source,
            entries=tuple(entries),
            ingest=index.manifest.ingest,
        )
        manifest.save(manifest_path)
    return ShardedRecipeIndex.load(manifest_path)


# -------------------------------------------------------------- migration


def migrate_manifest(
    manifest_path: str | Path,
    *,
    format: str = "v2",
    select=None,
) -> ShardManifest:
    """Rewrite a live manifest's shards into ``format`` (rolling migration).

    Loads the manifest (verifying every shard checksum), rewrites each shard
    not already in the target format as a **new** immutable artifact named
    ``<stem>.g<generation>.m<position>.json`` under a bumped generation, and
    atomically republishes the manifest.  Shards already in the target
    format keep their existing files — their bytes, names and checksums are
    untouched — so migrating an all-``format`` manifest only bumps the
    generation.  A crash before the final manifest write publishes nothing.

    ``select`` optionally maps each :class:`ShardEntry` to its target format
    (``"v1"``/``"v2"``) or ``None`` to keep it as-is, overriding ``format``
    per shard — the hook that produces deliberately mixed-kind manifests
    (rolling migrations migrate a subset per pass; the test suites randomise
    kinds with it).
    """
    _check_shard_format(format)
    manifest_path = Path(manifest_path)
    index = ShardedRecipeIndex.load(manifest_path)
    manifest = index.manifest
    generation = manifest.generation + 1
    with _publish_guard(manifest_path, expected_generation=manifest.generation):
        entries: list[ShardEntry] = []
        shards = iter(index.shards)
        for position, entry in enumerate(manifest.entries):
            if entry.kind == "tombstone":
                # Tombstone shards have one on-disk representation; they
                # ride along unchanged until compaction resolves them.
                entries.append(entry)
                continue
            shard = next(shards)
            target = select(entry) if select is not None else format
            if target is None or target == entry.format:
                entries.append(entry)
                continue
            _check_shard_format(target)
            shard_path = manifest_path.parent / _shard_file_name(
                manifest_path.stem, generation, f"m{position}"
            )
            shard.save(shard_path, kind=target)
            entries.append(
                _entry_for(shard, shard_path, kind=entry.kind, format=target)
            )
        updated = ShardManifest(
            num_shards=manifest.num_shards,
            generation=generation,
            doc_count=manifest.doc_count,
            source=manifest.source,
            entries=tuple(entries),
            ingest=manifest.ingest,
        )
        updated.save(manifest_path)
    return updated


# ------------------------------------------------------------ artifact loading


def load_index_artifact(text: str, source: str = "<index>"):
    """Registry loader accepting any index artifact kind.

    Dispatches on the envelope's ``format`` marker: a shard manifest loads
    (and checksum-verifies) every shard it lists, a v2 binary artifact is
    recovered to bytes and decoded lazily, anything else goes through
    :meth:`RecipeIndex.loads` for the canonical validation errors.  This is
    what lets ``serve --index`` and the hot-swap registry take a monolithic
    artifact and a manifest interchangeably.

    ``text`` that originated as binary must have been decoded with
    ``errors="surrogateescape"`` (the registry does) so the v2 branch can
    re-encode it losslessly.
    """
    from repro.index.codec import is_v2_artifact

    if is_v2_artifact(text):
        # RecipeIndex.loads recovers the raw bytes via surrogateescape.
        return RecipeIndex.loads(text, source=source)
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None  # RecipeIndex.loads raises the canonical error
    marker = document.get("format") if isinstance(document, dict) else None
    if marker == MANIFEST_ARTIFACT_FORMAT:
        return ShardedRecipeIndex.loads(text, source=source, document=document)
    # document=None (invalid JSON) re-parses inside parse_artifact, which
    # raises the canonical truncated/corrupt error with the source label.
    return RecipeIndex.loads(text, source=source, document=document)


def load_index_path(path: str | Path):
    """Load an index artifact **or** a shard manifest from ``path``.

    v2 artifacts are mmap'd and decoded lazily; v1 artifacts and manifests
    parse as before (a manifest's shards then dispatch per entry format).
    """
    from repro.index.builder import _decode_artifact_text
    from repro.index.codec import is_v2_artifact, load_index_v2_buffer

    path = Path(path)
    buffer = open_artifact_buffer(path)
    if is_v2_artifact(buffer):
        return load_index_v2_buffer(buffer, source=str(path))
    return load_index_artifact(_decode_artifact_text(buffer, str(path)), source=str(path))
