"""Inverted-index query subsystem over structured-recipe corpora.

The corpus pipeline (:mod:`repro.corpus`) writes structured recipes as
JSONL; this package makes that output queryable:

* :mod:`repro.index.builder` — :class:`IndexBuilder` streams structured
  recipes into a :class:`RecipeIndex` (sorted posting lists per normalised
  ingredient/process/utensil/title term, plus per-doc metadata), persisted
  through the same checksummed, version-gated artifact envelope as the
  pipeline bundles;
* :mod:`repro.index.query` — a boolean query language
  (``ingredient:tomato AND process:saute AND NOT ingredient:garlic``), a
  :class:`QueryEngine` evaluating it with posting-list algebra, and a
  brute-force scan path that is element-wise identical by construction.

Surfaced as ``repro index build`` / ``repro index query`` on the CLI and
``POST /v1/search`` on the serving layer.
"""

from repro.index.builder import (
    FIELDS,
    INDEX_ARTIFACT_FORMAT,
    IndexBuilder,
    PostingList,
    RecipeIndex,
    extract_entities,
)
from repro.index.query import (
    And,
    Not,
    Or,
    QueryEngine,
    QueryMatch,
    Term,
    matches_recipe,
    parse_query,
    render_query,
    scan_recipes,
    scan_structured_jsonl,
)

__all__ = [
    "And",
    "FIELDS",
    "INDEX_ARTIFACT_FORMAT",
    "IndexBuilder",
    "Not",
    "Or",
    "PostingList",
    "QueryEngine",
    "QueryMatch",
    "RecipeIndex",
    "Term",
    "extract_entities",
    "matches_recipe",
    "parse_query",
    "render_query",
    "scan_recipes",
    "scan_structured_jsonl",
]
