"""Inverted-index query subsystem over structured-recipe corpora.

The corpus pipeline (:mod:`repro.corpus`) writes structured recipes as
JSONL; this package makes that output queryable:

* :mod:`repro.index.builder` — :class:`IndexBuilder` streams structured
  recipes into a :class:`RecipeIndex` (sorted posting lists per normalised
  ingredient/process/utensil/title term, plus per-doc metadata), persisted
  through the same checksummed, version-gated artifact envelope as the
  pipeline bundles;
* :mod:`repro.index.query` — a boolean query language
  (``ingredient:tomato AND process:saute AND NOT ingredient:garlic``), a
  :class:`QueryEngine` evaluating it with posting-list algebra (linear or
  galloping kernels, picked adaptively by size skew; chunk-skipping AND
  over the v2 skip headers), and a brute-force scan path that is
  element-wise identical by construction;

* :mod:`repro.index.ranking` — BM25 ranked top-k retrieval
  (``QueryEngine.search(rank=True)``) with every statistic read from
  artifact metadata, facet aggregations (``QueryEngine.facets``), a
  brute-force scoring oracle, and a process-parallel batch search over
  shard manifests (:func:`parallel_ranked_search`).

* :mod:`repro.index.codec` — the compact binary posting format ("v2"):
  delta+varint posting lists behind an mmap'd, checksum-verified binary
  section, decoded lazily per term through an LRU, so artifacts are an
  order of magnitude smaller and open in O(header) time;

* :mod:`repro.index.sharding` — the sharded substrate:
  :func:`build_sharded_index` hash-partitions a corpus into N shards built
  in parallel, a checksummed :class:`ShardManifest` artifact is the atomic
  commit point, :func:`add_jsonl` appends incremental delta shards,
  :func:`delete_docs` tombstones documents (masked at query time, resolved
  at the next merge), and :func:`merge_shards` compacts everything into
  fewer shards or one monolithic index — all element-wise identical to the
  monolithic engine.  Publication is guarded by a manifest write lock with
  a generation compare-and-swap, so concurrent writers (appender,
  compactor, the :mod:`repro.ingest` daemon) cannot clobber each other.

Surfaced as ``repro index build [--shards N] [--workers W]`` /
``repro index query`` / ``repro index merge`` / ``repro index update`` /
``repro index delete`` / ``repro ingest run`` on the CLI and
``POST /v1/search`` on the serving layer (which hot-swaps whole manifests
atomically).
"""

from repro.index.builder import (
    FIELDS,
    INDEX_ARTIFACT_FORMAT,
    IndexBuilder,
    PostingBlocks,
    PostingList,
    RecipeIndex,
    extract_entities,
    load_index_bytes,
)
from repro.index.ranking import (
    Bm25Parameters,
    Bm25Scorer,
    CorpusStats,
    RankedMatch,
    facet_counts,
    parallel_ranked_search,
    rank_recipes,
)
from repro.index.codec import (
    INDEX_V2_ARTIFACT_FORMAT,
    RecipeIndexV2,
    load_index_v2,
    save_index_v2,
)
from repro.index.sharding import (
    MANIFEST_ARTIFACT_FORMAT,
    TOMBSTONE_ARTIFACT_FORMAT,
    ShardEntry,
    ShardManifest,
    ShardedRecipeIndex,
    add_jsonl,
    build_sharded_index,
    commit_update,
    delete_docs,
    load_index_artifact,
    load_index_path,
    merge_shards,
    migrate_manifest,
    shard_for,
)
from repro.index.query import (
    And,
    Not,
    Or,
    QueryEngine,
    QueryMatch,
    Term,
    matches_recipe,
    parse_query,
    render_query,
    scan_recipes,
    scan_structured_jsonl,
)

__all__ = [
    "And",
    "Bm25Parameters",
    "Bm25Scorer",
    "CorpusStats",
    "FIELDS",
    "INDEX_ARTIFACT_FORMAT",
    "INDEX_V2_ARTIFACT_FORMAT",
    "IndexBuilder",
    "MANIFEST_ARTIFACT_FORMAT",
    "Not",
    "Or",
    "PostingBlocks",
    "PostingList",
    "QueryEngine",
    "QueryMatch",
    "RankedMatch",
    "RecipeIndex",
    "RecipeIndexV2",
    "ShardEntry",
    "ShardManifest",
    "ShardedRecipeIndex",
    "TOMBSTONE_ARTIFACT_FORMAT",
    "Term",
    "add_jsonl",
    "build_sharded_index",
    "commit_update",
    "delete_docs",
    "extract_entities",
    "facet_counts",
    "load_index_artifact",
    "load_index_bytes",
    "load_index_path",
    "load_index_v2",
    "matches_recipe",
    "merge_shards",
    "migrate_manifest",
    "parallel_ranked_search",
    "parse_query",
    "rank_recipes",
    "render_query",
    "save_index_v2",
    "scan_recipes",
    "scan_structured_jsonl",
    "shard_for",
]
