"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so downstream
users can catch one base class.  Modules raise the most specific subclass
available rather than bare ``ValueError``/``RuntimeError`` so that callers can
distinguish configuration mistakes from genuine data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before training."""


class VocabularyError(ReproError):
    """An unknown symbol was encountered where a known one is required."""


class SchemaError(ReproError):
    """A label or tag outside the recipe schema was supplied."""


class DataError(ReproError):
    """Input data violates a structural assumption (empty, misaligned...)."""


class ParsingError(ReproError):
    """The dependency parser could not produce a well-formed tree."""


class ConfigurationError(ReproError):
    """A component was configured with invalid parameters."""


class PersistenceError(ReproError):
    """A serialised artifact is corrupt, truncated or of an unknown version."""


class QueryError(ReproError):
    """A recipe query string or query tree is malformed."""


__all__ = [
    "ConfigurationError",
    "DataError",
    "NotFittedError",
    "ParsingError",
    "PersistenceError",
    "QueryError",
    "ReproError",
    "SchemaError",
    "VocabularyError",
]
