"""Dense compiled scorer for string-featured linear models.

The POS :class:`~repro.pos.perceptron.AveragedPerceptron` stores weights as
``feature -> class -> weight`` dictionaries, which is convenient during
online training but slow at inference: every prediction walks nested dicts.
:class:`CompiledLinearScorer` freezes those weights into a dense
``(n_features, n_classes)`` matrix over a feature vocabulary.

Scoring accumulates matrix rows *sequentially in feature order*, exactly the
order the dictionary implementation adds weights per class, so compiled
scores are bitwise-identical to dictionary scores (adding an exact ``0.0``
for a class a feature never touched is a no-op in IEEE arithmetic).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.text.vocab import Vocabulary

__all__ = ["CompiledLinearScorer"]


class CompiledLinearScorer:
    """Dense row-gather scorer over string features.

    Args:
        weights: Nested ``feature -> class -> weight`` mapping.
        classes: Full class inventory (classes may carry no weight at all).
    """

    def __init__(
        self, weights: Mapping[str, Mapping[str, float]], classes: Iterable[str]
    ) -> None:
        self.classes: list[str] = sorted(classes)
        self._class_index = {label: i for i, label in enumerate(self.classes)}
        self.feature_vocab = Vocabulary(sorted(weights)).freeze()
        self.matrix = np.zeros(
            (len(self.feature_vocab), len(self.classes)), dtype=np.float64
        )
        for feature, class_weights in weights.items():
            row = self.feature_vocab.index(feature)
            for label, weight in class_weights.items():
                self.matrix[row, self._class_index[label]] = weight

    def scores(self, features: Iterable[str]) -> np.ndarray:
        """Per-class score vector (multiset semantics: repeats count twice)."""
        scores = np.zeros(len(self.classes), dtype=np.float64)
        lookup = self.feature_vocab.get
        matrix = self.matrix
        for feature in features:
            row = lookup(feature)
            if row is not None:
                scores += matrix[row]
        return scores

    def predict(self, features: Iterable[str]) -> str:
        """Highest-scoring class; ties break toward the largest class name."""
        scores = self.scores(features)
        # Largest label among score ties == last argmax over sorted classes.
        best = len(self.classes) - 1 - int(np.argmax(scores[::-1]))
        return self.classes[best]

    def score_dict(self, features: Iterable[str]) -> dict[str, float]:
        """Class -> score mapping (compatibility with the dict scorer)."""
        scores = self.scores(features)
        return {label: float(scores[i]) for i, label in enumerate(self.classes)}
