"""Feature interning and CSR-style dataset encoding.

The sequence labelers all consume per-token *string* features.  Re-mapping
those strings to integer ids on every objective evaluation or prediction is
the single largest cost of the seed implementation, so the encoder performs
the mapping exactly once and stores the result in a compressed-sparse-row
layout:

* ``indices`` -- one flat ``int64`` array with the (deduplicated, sorted)
  feature ids of every token, concatenated;
* ``offsets`` -- ``int64`` array of length ``n_tokens + 1`` such that token
  ``t`` owns ``indices[offsets[t]:offsets[t + 1]]``.

On top of the per-sentence (:class:`EncodedSequence`) and per-corpus
(:class:`EncodedBatch`) views, :class:`EncodedDataset` prepares everything a
training objective needs: gold labels, exact-length sentence groups with
precomputed gather indices, a feature scatter plan for the emission gradient
and the (parameter-independent) empirical feature counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.errors import DataError
from repro.text.vocab import Vocabulary
from repro.utils import require_equal_lengths

__all__ = ["EncodedBatch", "EncodedDataset", "EncodedSequence", "FeatureEncoder"]


@dataclass(frozen=True)
class EncodedSequence:
    """One sentence in CSR form: flat feature ids + per-token offsets."""

    indices: np.ndarray  # (total_active_features,) int64
    offsets: np.ndarray  # (n_tokens + 1,) int64

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def token_indices(self, position: int) -> np.ndarray:
        """Feature ids active at ``position`` (a view, do not mutate)."""
        return self.indices[self.offsets[position] : self.offsets[position + 1]]


@dataclass(frozen=True)
class EncodedBatch:
    """Many sentences in one flat CSR block.

    ``sentence_offsets`` indexes the *token* axis: sentence ``s`` owns tokens
    ``sentence_offsets[s]:sentence_offsets[s + 1]`` of the flat layout.
    """

    indices: np.ndarray  # (total_active_features,) int64
    offsets: np.ndarray  # (total_tokens + 1,) int64
    sentence_offsets: np.ndarray  # (n_sentences + 1,) int64

    @property
    def n_sentences(self) -> int:
        return len(self.sentence_offsets) - 1

    @property
    def n_tokens(self) -> int:
        return len(self.offsets) - 1

    @property
    def lengths(self) -> np.ndarray:
        """Token count per sentence."""
        return np.diff(self.sentence_offsets)

    def sentence(self, index: int) -> EncodedSequence:
        """CSR view of one sentence."""
        start = self.sentence_offsets[index]
        stop = self.sentence_offsets[index + 1]
        token_offsets = self.offsets[start : stop + 1]
        base = token_offsets[0]
        return EncodedSequence(
            indices=self.indices[base : token_offsets[-1]],
            offsets=token_offsets - base,
        )


class FeatureEncoder:
    """Interns string features against a (frozen) feature vocabulary.

    The encoder is the *single* train/predict mapping used by every model:
    unknown features are dropped and each token's surviving ids are
    deduplicated and sorted, so repeated feature strings can never score a
    token twice (the seed CRF deduplicated at train time but not at predict
    time).
    """

    def __init__(self, vocab: Vocabulary) -> None:
        self.vocab = vocab

    def encode_token(self, token_features: Sequence[str]) -> np.ndarray:
        """Sorted, deduplicated feature ids for one token."""
        lookup = self.vocab.get
        ids = [i for feature in token_features if (i := lookup(feature)) is not None]
        if not ids:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.asarray(ids, dtype=np.int64))

    def encode_sequence(self, feature_sequence: Sequence[Sequence[str]]) -> EncodedSequence:
        """CSR encoding of one sentence."""
        per_token = [self.encode_token(token) for token in feature_sequence]
        offsets = np.zeros(len(per_token) + 1, dtype=np.int64)
        if per_token:
            np.cumsum([ids.size for ids in per_token], out=offsets[1:])
            indices = np.concatenate(per_token) if offsets[-1] else np.empty(0, dtype=np.int64)
        else:
            indices = np.empty(0, dtype=np.int64)
        return EncodedSequence(indices=indices, offsets=offsets)

    def encode_batch(
        self, feature_sequences: Sequence[Sequence[Sequence[str]]]
    ) -> EncodedBatch:
        """Flat CSR encoding of many sentences (empty sentences allowed).

        One Python pass gathers ``(token, feature_id)`` pairs; a single
        ``np.unique`` over combined keys then deduplicates and sorts every
        token's ids at once, so the per-token cost is a dict lookup per
        feature string and nothing else.
        """
        lookup = self.vocab.index_map.get
        # Three flat comprehensions instead of nested Python loops: the only
        # per-feature Python work left is one bare dict lookup.
        raw_counts = [len(token) for sentence in feature_sequences for token in sentence]
        raw_ids = [
            lookup(feature, -1)
            for sentence in feature_sequences
            for token in sentence
            for feature in token
        ]
        sentence_offsets = np.zeros(len(feature_sequences) + 1, dtype=np.int64)
        np.cumsum([len(sentence) for sentence in feature_sequences], out=sentence_offsets[1:])
        token_count = len(raw_counts)
        ids = np.asarray(raw_ids, dtype=np.int64)
        known = ids >= 0
        if not known.any():
            return EncodedBatch(
                indices=np.empty(0, dtype=np.int64),
                offsets=np.zeros(token_count + 1, dtype=np.int64),
                sentence_offsets=sentence_offsets,
            )
        owners = np.repeat(np.arange(token_count, dtype=np.int64), raw_counts)
        # Combined (token, feature) keys: one global sort + dedup in C (a
        # plain sort beats np.unique's hash path on integer keys).
        stride = np.int64(max(len(self.vocab), 1))
        keys = owners[known] * stride + ids[known]
        keys.sort(kind="stable")
        keys = keys[np.r_[True, keys[1:] != keys[:-1]]]
        owner_tokens = keys // stride
        indices = keys % stride
        offsets = np.zeros(token_count + 1, dtype=np.int64)
        np.cumsum(np.bincount(owner_tokens, minlength=token_count), out=offsets[1:])
        return EncodedBatch(indices=indices, offsets=offsets, sentence_offsets=sentence_offsets)


@dataclass
class _LengthGroup:
    """All training sentences of one exact length, stacked."""

    length: int
    sentence_ids: np.ndarray  # (batch,) int64, indices into the kept sentences
    token_gather: np.ndarray  # (batch * length,) int64, flat token positions
    labels: np.ndarray  # (batch, length) int64 gold labels


@dataclass
class EncodedDataset:
    """A labelled training set, fully encoded for vectorized objectives.

    Built once per :meth:`fit` call; every L-BFGS objective evaluation then
    runs entirely on the precomputed arrays.  Empty sentences are skipped
    (matching the seed encoders) and a dataset with no surviving sentences
    raises :class:`~repro.errors.DataError`.
    """

    batch: EncodedBatch
    labels: np.ndarray  # (total_tokens,) int64
    n_features: int
    n_labels: int
    groups: list[_LengthGroup] = field(default_factory=list)
    # Scatter plan: positions of `batch.indices` sorted by feature id.
    feature_order: np.ndarray | None = None
    feature_unique: np.ndarray | None = None
    feature_starts: np.ndarray | None = None
    token_of_feature: np.ndarray | None = None
    gather_order: np.ndarray | None = None  # token_of_feature[feature_order]
    # Empirical (parameter-independent) gradient counts.
    empirical_emission: np.ndarray | None = None
    empirical_transition: np.ndarray | None = None
    empirical_start: np.ndarray | None = None
    empirical_end: np.ndarray | None = None

    @classmethod
    def build(
        cls,
        encoder: FeatureEncoder,
        label_vocab: Vocabulary,
        feature_sequences: Sequence[Sequence[Sequence[str]]],
        label_sequences: Sequence[Sequence[str]],
    ) -> "EncodedDataset":
        kept_features: list[Sequence[Sequence[str]]] = []
        kept_labels: list[np.ndarray] = []
        for sentence, labels in zip(feature_sequences, label_sequences):
            require_equal_lengths("sentence", sentence, "labels", labels)
            if len(sentence) == 0:
                continue
            kept_features.append(sentence)
            kept_labels.append(
                np.array([label_vocab.index(label) for label in labels], dtype=np.int64)
            )
        if not kept_features:
            raise DataError("all training sequences were empty")

        batch = encoder.encode_batch(kept_features)
        labels_flat = np.concatenate(kept_labels)
        dataset = cls(
            batch=batch,
            labels=labels_flat,
            n_features=len(encoder.vocab),
            n_labels=len(label_vocab),
        )
        dataset._build_groups()
        dataset._build_scatter_plan()
        dataset._build_empirical_counts()
        return dataset

    # ------------------------------------------------------------ precompute

    def _build_groups(self) -> None:
        lengths = self.batch.lengths
        starts = self.batch.sentence_offsets[:-1]
        for length in np.unique(lengths):
            sentence_ids = np.flatnonzero(lengths == length)
            token_gather = (
                starts[sentence_ids][:, None] + np.arange(length, dtype=np.int64)[None, :]
            ).ravel()
            self.groups.append(
                _LengthGroup(
                    length=int(length),
                    sentence_ids=sentence_ids,
                    token_gather=token_gather,
                    labels=self.labels[token_gather].reshape(len(sentence_ids), int(length)),
                )
            )

    def _build_scatter_plan(self) -> None:
        indices = self.batch.indices
        counts = np.diff(self.batch.offsets)
        self.token_of_feature = np.repeat(
            np.arange(self.batch.n_tokens, dtype=np.int64), counts
        )
        if indices.size:
            order = np.argsort(indices, kind="stable")
            sorted_ids = indices[order]
            starts = np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])
            self.feature_order = order
            self.feature_unique = sorted_ids[starts]
            self.feature_starts = starts
            self.gather_order = self.token_of_feature[order]
        else:
            self.feature_order = np.empty(0, dtype=np.int64)
            self.feature_unique = np.empty(0, dtype=np.int64)
            self.feature_starts = np.empty(0, dtype=np.int64)
            self.gather_order = np.empty(0, dtype=np.int64)

    def _build_empirical_counts(self) -> None:
        n_labels = self.n_labels
        labels = self.labels
        sent_starts = self.batch.sentence_offsets[:-1]
        sent_lasts = self.batch.sentence_offsets[1:] - 1
        self.empirical_start = np.bincount(
            labels[sent_starts], minlength=n_labels
        ).astype(np.float64)
        self.empirical_end = np.bincount(labels[sent_lasts], minlength=n_labels).astype(
            np.float64
        )

        transition = np.zeros((n_labels, n_labels), dtype=np.float64)
        if self.batch.n_tokens > 1:
            is_start = np.zeros(self.batch.n_tokens, dtype=bool)
            is_start[sent_starts] = True
            keep = ~is_start[1:]
            np.add.at(transition, (labels[:-1][keep], labels[1:][keep]), 1.0)
        self.empirical_transition = transition

        emission = np.zeros((self.n_features, n_labels), dtype=np.float64)
        if self.batch.indices.size:
            np.add.at(
                emission,
                (self.batch.indices, labels[self.token_of_feature]),
                1.0,
            )
        self.empirical_emission = emission

    # -------------------------------------------------------------- gradient

    def scatter_emission_gradient(
        self, gamma_flat: np.ndarray, out: np.ndarray
    ) -> None:
        """Accumulate expected emission counts: ``out[f] += sum gamma[token]``.

        ``gamma_flat`` has shape ``(total_tokens, n_labels)``; the scatter
        aggregates per feature id with one ``reduceat`` over the precomputed
        sorted order instead of a slow ``np.add.at`` with duplicate indices.
        """
        if self.batch.indices.size == 0:
            return
        contributions = gamma_flat[self.gather_order]
        out[self.feature_unique] += np.add.reduceat(
            contributions, self.feature_starts, axis=0
        )

    def per_sentence(self) -> list[tuple[EncodedSequence, np.ndarray]]:
        """(sequence, gold labels) pairs for online (shuffled) trainers."""
        return [
            (
                self.batch.sentence(s),
                self.labels[
                    self.batch.sentence_offsets[s] : self.batch.sentence_offsets[s + 1]
                ],
            )
            for s in range(self.batch.n_sentences)
        ]
