"""NumPy lattice kernels: emissions, forward/backward, batched Viterbi.

Every kernel is elementwise-identical to the sequential seed recursions --
the batch dimension only widens the arrays, it never changes the order of
floating-point operations within one sentence -- so batched decoding is
bitwise-reproducible against per-sentence decoding.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.special import logsumexp

from repro.engine.batching import LengthBuckets, pad_and_stack
from repro.engine.encoder import EncodedSequence

__all__ = [
    "backward_batch",
    "decode_emissions",
    "flat_emission_scores",
    "forward_batch",
    "sequence_emission_scores",
    "viterbi_padded",
]


# ------------------------------------------------------------------ emissions


def flat_emission_scores(
    indices: np.ndarray,
    offsets: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Emission scores for all tokens of a CSR block in one gather.

    Equivalent to ``weights[token_ids].sum(axis=0)`` per token, computed with
    a single ``np.add.reduceat`` over the non-empty segments.  Tokens with no
    active features score zero for every label.
    """
    n_tokens = len(offsets) - 1
    n_labels = weights.shape[1]
    scores = np.zeros((n_tokens, n_labels), dtype=np.float64)
    if indices.size == 0 or n_tokens == 0:
        return scores
    counts = np.diff(offsets)
    nonempty = np.flatnonzero(counts > 0)
    # Segments between consecutive non-empty starts cover exactly one token's
    # features (empty tokens own no slots), so reduceat needs no end markers.
    scores[nonempty] = np.add.reduceat(weights[indices], offsets[nonempty], axis=0)
    return scores


def sequence_emission_scores(
    sequence: EncodedSequence, weights: np.ndarray
) -> np.ndarray:
    """Emission score matrix ``(len(sequence), n_labels)`` for one sentence."""
    return flat_emission_scores(sequence.indices, sequence.offsets, weights)


# ----------------------------------------------------------- forward/backward


def forward_batch(
    emissions: np.ndarray, transition: np.ndarray, start: np.ndarray
) -> np.ndarray:
    """Log-space forward recursion over a ``(B, T, L)`` emission block."""
    batch, length, n_labels = emissions.shape
    alpha = np.empty((batch, length, n_labels), dtype=np.float64)
    alpha[:, 0] = start + emissions[:, 0]
    for t in range(1, length):
        alpha[:, t] = (
            logsumexp(alpha[:, t - 1][:, :, None] + transition[None, :, :], axis=1)
            + emissions[:, t]
        )
    return alpha


def backward_batch(
    emissions: np.ndarray, transition: np.ndarray, end: np.ndarray
) -> np.ndarray:
    """Log-space backward recursion over a ``(B, T, L)`` emission block."""
    batch, length, n_labels = emissions.shape
    beta = np.empty((batch, length, n_labels), dtype=np.float64)
    beta[:, -1] = end
    for t in range(length - 2, -1, -1):
        beta[:, t] = logsumexp(
            transition[None, :, :] + (emissions[:, t + 1] + beta[:, t + 1])[:, None, :],
            axis=2,
        )
    return beta


# --------------------------------------------------------------- batch viterbi


def viterbi_padded(
    emissions: np.ndarray,
    lengths: np.ndarray,
    transition: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    *,
    prefer_last_final: bool = False,
) -> list[np.ndarray]:
    """Viterbi decode a padded ``(B, T, L)`` block with per-sentence lengths.

    Scores of a sentence freeze once ``t`` reaches its length, so padding
    never influences a result.  ``prefer_last_final`` selects the *largest*
    label index among ties for the final state (the HMM's historical
    tie-break); intermediate backpointers always keep the smallest index,
    matching ``np.argmax``.
    """
    batch, width, n_labels = emissions.shape
    scores = start + emissions[:, 0]
    backpointers = np.zeros((batch, width, n_labels), dtype=np.int64)
    for t in range(1, width):
        candidate = scores[:, :, None] + transition[None, :, :]
        step_back = np.argmax(candidate, axis=1)
        stepped = (
            np.take_along_axis(candidate, step_back[:, None, :], axis=1)[:, 0]
            + emissions[:, t]
        )
        active = (t < lengths)[:, None]
        scores = np.where(active, stepped, scores)
        backpointers[:, t] = step_back
    final = scores + end
    if prefer_last_final:
        last = n_labels - 1 - np.argmax(final[:, ::-1], axis=1)
    else:
        last = np.argmax(final, axis=1)

    rows = np.arange(batch)
    path = np.zeros((batch, width), dtype=np.int64)
    path[rows, lengths - 1] = last
    for t in range(width - 1, 0, -1):
        stepped_back = backpointers[rows, t, path[:, t]]
        path[:, t - 1] = np.where(t < lengths, stepped_back, path[:, t - 1])
    return [path[row, : lengths[row]] for row in range(batch)]


def decode_emissions(
    emission_matrices: Sequence[np.ndarray],
    transition: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    *,
    prefer_last_final: bool = False,
) -> list[np.ndarray]:
    """Batch Viterbi over per-sentence emission matrices of varying length.

    Sentences are length-bucketed, padded and decoded one bucket per kernel
    call; results come back in input order.  Empty sentences decode to empty
    paths.
    """
    paths: list[np.ndarray | None] = [None] * len(emission_matrices)
    lengths = [matrix.shape[0] for matrix in emission_matrices]
    decodable = [i for i, n in enumerate(lengths) if n > 0]
    for i, n in enumerate(lengths):
        if n == 0:
            paths[i] = np.empty(0, dtype=np.int64)
    if not decodable:
        return [path for path in paths]  # type: ignore[misc]
    buckets = LengthBuckets.from_lengths([lengths[i] for i in decodable])
    for width, local_ids in buckets.buckets.items():
        sentence_ids = np.array([decodable[i] for i in local_ids], dtype=np.int64)
        stacked = pad_and_stack(emission_matrices, sentence_ids, width)
        bucket_lengths = np.array([lengths[i] for i in sentence_ids], dtype=np.int64)
        decoded = viterbi_padded(
            stacked,
            bucket_lengths,
            transition,
            start,
            end,
            prefer_last_final=prefer_last_final,
        )
        for sentence_id, path in zip(sentence_ids, decoded):
            paths[sentence_id] = path
    return [path for path in paths]  # type: ignore[misc]
