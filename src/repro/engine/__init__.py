"""Vectorized sequence-labeling engine.

``repro.engine`` is the shared encode/score/decode substrate behind the four
sequence labelers (:class:`~repro.ner.crf.LinearChainCRF`,
:class:`~repro.ner.hmm.HiddenMarkovModel`,
:class:`~repro.ner.structured_perceptron.StructuredPerceptron` and the POS
:class:`~repro.pos.perceptron.AveragedPerceptron`).  The design moves all
per-token work out of Python loops:

* :mod:`repro.engine.encoder` interns string features to integer ids once and
  stores them as CSR-style ``indices``/``offsets`` arrays
  (:class:`EncodedSequence`, :class:`EncodedBatch`) plus a full training-set
  encoding with precomputed empirical counts (:class:`EncodedDataset`);
* :mod:`repro.engine.lattice` holds the NumPy kernels: one-shot emission
  gathers (``np.add.reduceat`` over the CSR layout), batched log-space
  forward/backward recursions and padded batch Viterbi;
* :mod:`repro.engine.batching` groups sequences into length buckets so a
  single kernel call decodes hundreds of sentences;
* :mod:`repro.engine.scorer` compiles string-keyed perceptron weights into a
  dense matrix scorer (bitwise-identical to dictionary scoring);
* :mod:`repro.engine.session` memoizes feature extraction and decoded lines
  for the corpus-scale inference paths.
"""

from repro.engine.batching import LengthBuckets, bucket_length, plan_flush_chunks
from repro.engine.encoder import (
    EncodedBatch,
    EncodedDataset,
    EncodedSequence,
    FeatureEncoder,
)
from repro.engine.lattice import (
    backward_batch,
    decode_emissions,
    flat_emission_scores,
    forward_batch,
    sequence_emission_scores,
    viterbi_padded,
)
from repro.engine.scorer import CompiledLinearScorer
from repro.engine.session import InferenceSession

__all__ = [
    "CompiledLinearScorer",
    "EncodedBatch",
    "EncodedDataset",
    "EncodedSequence",
    "FeatureEncoder",
    "InferenceSession",
    "LengthBuckets",
    "backward_batch",
    "bucket_length",
    "decode_emissions",
    "flat_emission_scores",
    "forward_batch",
    "plan_flush_chunks",
    "sequence_emission_scores",
    "viterbi_padded",
]
