"""Memoizing inference session: feature extraction + decoded-line caches.

Recipe corpora repeat themselves heavily -- the same ingredient phrase occurs
in dozens of recipes and the dictionary builder re-tags the very steps the
pipeline later decodes -- so the corpus-scale inference path keeps two
memos per model:

* a *feature cache* keyed on the token tuple, skipping re-extraction of the
  string feature templates;
* a *decode LRU* keyed on the token tuple (plus any post-processing flag),
  returning previously decoded tag sequences without touching the lattice.

Both caches are bounded LRUs and are cleared whenever the owning model is
retrained.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable

__all__ = ["InferenceSession"]


class InferenceSession:
    """Bounded LRU caches shared by a model's inference entry points.

    Args:
        feature_cache_size: Max token tuples whose extracted features are kept.
        decode_cache_size: Max decoded lines kept.
    """

    def __init__(
        self, *, feature_cache_size: int = 65536, decode_cache_size: int = 65536
    ) -> None:
        self.feature_cache_size = int(feature_cache_size)
        self.decode_cache_size = int(decode_cache_size)
        self._features: OrderedDict[Hashable, object] = OrderedDict()
        self._decodes: OrderedDict[Hashable, object] = OrderedDict()
        self.feature_hits = 0
        self.feature_misses = 0
        self.decode_hits = 0
        self.decode_misses = 0

    # ---------------------------------------------------------------- features

    def get_features(self, key: Hashable):
        """Cached feature extraction result for ``key`` or ``None``."""
        cached = self._features.get(key)
        if cached is None:
            self.feature_misses += 1
            return None
        self._features.move_to_end(key)
        self.feature_hits += 1
        return cached

    def put_features(self, key: Hashable, value) -> None:
        self._features[key] = value
        self._features.move_to_end(key)
        while len(self._features) > self.feature_cache_size:
            self._features.popitem(last=False)

    # ----------------------------------------------------------------- decodes

    def get_decode(self, key: Hashable):
        """Cached decoded tags for ``key`` or ``None``."""
        cached = self._decodes.get(key)
        if cached is None:
            self.decode_misses += 1
            return None
        self._decodes.move_to_end(key)
        self.decode_hits += 1
        return cached

    def put_decode(self, key: Hashable, value) -> None:
        self._decodes[key] = value
        self._decodes.move_to_end(key)
        while len(self._decodes) > self.decode_cache_size:
            self._decodes.popitem(last=False)

    # ------------------------------------------------------------------ admin

    def clear(self) -> None:
        """Drop both caches and zero the hit/miss counters.

        Called after retraining the owning model; resetting the counters with
        the caches keeps :meth:`stats` describing only the current model
        instead of blending in hit rates from before the retrain.
        """
        self._features.clear()
        self._decodes.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without touching the cached entries."""
        self.feature_hits = 0
        self.feature_misses = 0
        self.decode_hits = 0
        self.decode_misses = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss counters plus current cache sizes."""
        return {
            "feature_hits": self.feature_hits,
            "feature_misses": self.feature_misses,
            "feature_entries": len(self._features),
            "decode_hits": self.decode_hits,
            "decode_misses": self.decode_misses,
            "decode_entries": len(self._decodes),
        }
