"""Length bucketing for padded batch decoding.

Sentences are grouped into buckets whose width is the sentence length rounded
up to the next power of two; every bucket is decoded with one padded kernel
call.  Padding wastes at most half of each lattice sweep while keeping the
number of distinct kernel launches logarithmic in the length range, which is
the standard trade-off for CPU-vectorized sequence models.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = ["LengthBuckets", "bucket_length", "pad_and_stack", "plan_flush_chunks"]


def bucket_length(length: int) -> int:
    """Bucket width for a sentence of ``length`` tokens (next power of two)."""
    if length <= 1:
        return 1
    return 1 << (length - 1).bit_length()


@dataclass(frozen=True)
class LengthBuckets:
    """Sentence ids grouped by padded bucket width."""

    buckets: dict[int, np.ndarray]  # width -> (batch,) sentence ids

    @classmethod
    def from_lengths(cls, lengths: Sequence[int]) -> "LengthBuckets":
        widths = np.array([bucket_length(int(n)) for n in lengths], dtype=np.int64)
        buckets = {
            int(width): np.flatnonzero(widths == width)
            for width in np.unique(widths)
        }
        return cls(buckets=buckets)


def plan_flush_chunks(
    lengths: Sequence[int], *, max_sentences: int = 256, max_tokens: int = 16384
) -> list[list[int]]:
    """Partition sentence indices into decode chunks bounded in both axes.

    The microbatching queue drains an unbounded number of coalesced requests
    per flush; pushing them all through one padded kernel would let a traffic
    spike allocate an arbitrarily large ``(B, T, L)`` lattice.  This planner
    splits the drained batch into consecutive chunks holding at most
    ``max_sentences`` sentences and at most ``max_tokens`` *padded* tokens
    (each sentence accounted at its power-of-two bucket width), so every
    kernel launch has a bounded footprint while chunks stay as full as the
    budgets allow.  A single oversized sentence still gets its own chunk.
    """
    if max_sentences < 1:
        raise ValueError("max_sentences must be at least 1")
    if max_tokens < 1:
        raise ValueError("max_tokens must be at least 1")
    chunks: list[list[int]] = []
    current: list[int] = []
    current_tokens = 0
    for index, length in enumerate(lengths):
        width = bucket_length(int(length))
        over_budget = current and (
            len(current) >= max_sentences or current_tokens + width > max_tokens
        )
        if over_budget:
            chunks.append(current)
            current = []
            current_tokens = 0
        current.append(index)
        current_tokens += width
    if current:
        chunks.append(current)
    return chunks


def pad_and_stack(
    matrices: Sequence[np.ndarray], sentence_ids: np.ndarray, width: int
) -> np.ndarray:
    """Stack ``matrices[i]`` for ``i`` in ``sentence_ids`` into ``(B, width, L)``.

    Rows beyond each sentence's true length are zero; the lattice kernels
    carry scores through padded steps unchanged, so the padding value never
    reaches a result.
    """
    n_labels = matrices[sentence_ids[0]].shape[1]
    stacked = np.zeros((len(sentence_ids), width, n_labels), dtype=np.float64)
    for row, sentence_id in enumerate(sentence_ids):
        emissions = matrices[sentence_id]
        stacked[row, : emissions.shape[0]] = emissions
    return stacked
