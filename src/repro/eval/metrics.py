"""Precision, recall and F1 for sequence labelling.

Two granularities are provided:

* **entity-level** (the headline numbers of the paper): an entity span is
  counted correct only if both its boundaries and its label match the gold
  span exactly (CoNLL convention);
* **token-level**: per-token accuracy and per-label scores, useful for error
  analysis and the ablation benchmarks.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import DataError
from repro.ner.encoding import OUTSIDE_TAG, spans_from_tags
from repro.utils import require_equal_lengths

__all__ = [
    "EvaluationReport",
    "LabelScore",
    "confusion_matrix",
    "entity_f1",
    "evaluate_sequences",
    "token_accuracy",
]


@dataclass(frozen=True)
class LabelScore:
    """Precision/recall/F1 for one label.

    Attributes:
        label: The entity label.
        precision: TP / (TP + FP); 0 when nothing was predicted.
        recall: TP / (TP + FN); 0 when nothing was expected.
        f1: Harmonic mean of precision and recall (0 when both are 0).
        support: Number of gold entities with this label.
    """

    label: str
    precision: float
    recall: float
    f1: float
    support: int


@dataclass(frozen=True)
class EvaluationReport:
    """Micro-averaged scores plus a per-label breakdown."""

    precision: float
    recall: float
    f1: float
    per_label: dict[str, LabelScore]
    true_positives: int
    false_positives: int
    false_negatives: int

    def score_for(self, label: str) -> LabelScore:
        """Per-label score; zero scores when the label never occurred."""
        if label in self.per_label:
            return self.per_label[label]
        return LabelScore(label=label, precision=0.0, recall=0.0, f1=0.0, support=0)


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def _safe_ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def evaluate_sequences(
    predicted: Sequence[Sequence[str]],
    gold: Sequence[Sequence[str]],
    *,
    labels: Sequence[str] | None = None,
) -> EvaluationReport:
    """Entity-level evaluation of predicted vs gold raw tag sequences.

    Args:
        predicted: Predicted per-token tags, one sequence per sentence.
        gold: Gold per-token tags, aligned with ``predicted``.
        labels: Restrict scoring to these labels (default: every label seen
            in the gold data).
    """
    require_equal_lengths("predicted", predicted, "gold", gold)
    if len(predicted) == 0:
        raise DataError("cannot evaluate zero sequences")

    tp: Counter = Counter()
    fp: Counter = Counter()
    fn: Counter = Counter()
    wanted = set(labels) if labels is not None else None

    for predicted_tags, gold_tags in zip(predicted, gold):
        require_equal_lengths("predicted_tags", predicted_tags, "gold_tags", gold_tags)
        predicted_spans = {
            (span.label, span.start, span.end)
            for span in spans_from_tags(list(predicted_tags))
            if wanted is None or span.label in wanted
        }
        gold_spans = {
            (span.label, span.start, span.end)
            for span in spans_from_tags(list(gold_tags))
            if wanted is None or span.label in wanted
        }
        for span in predicted_spans & gold_spans:
            tp[span[0]] += 1
        for span in predicted_spans - gold_spans:
            fp[span[0]] += 1
        for span in gold_spans - predicted_spans:
            fn[span[0]] += 1

    all_labels = sorted(set(tp) | set(fp) | set(fn))
    per_label: dict[str, LabelScore] = {}
    for label in all_labels:
        precision = _safe_ratio(tp[label], tp[label] + fp[label])
        recall = _safe_ratio(tp[label], tp[label] + fn[label])
        per_label[label] = LabelScore(
            label=label,
            precision=precision,
            recall=recall,
            f1=_f1(precision, recall),
            support=tp[label] + fn[label],
        )

    total_tp = sum(tp.values())
    total_fp = sum(fp.values())
    total_fn = sum(fn.values())
    precision = _safe_ratio(total_tp, total_tp + total_fp)
    recall = _safe_ratio(total_tp, total_tp + total_fn)
    return EvaluationReport(
        precision=precision,
        recall=recall,
        f1=_f1(precision, recall),
        per_label=per_label,
        true_positives=total_tp,
        false_positives=total_fp,
        false_negatives=total_fn,
    )


def entity_f1(predicted: Sequence[Sequence[str]], gold: Sequence[Sequence[str]]) -> float:
    """Micro-averaged entity-level F1 (shorthand for the common case)."""
    return evaluate_sequences(predicted, gold).f1


def token_accuracy(predicted: Sequence[Sequence[str]], gold: Sequence[Sequence[str]]) -> float:
    """Fraction of tokens whose predicted tag matches the gold tag."""
    require_equal_lengths("predicted", predicted, "gold", gold)
    correct = 0
    total = 0
    for predicted_tags, gold_tags in zip(predicted, gold):
        require_equal_lengths("predicted_tags", predicted_tags, "gold_tags", gold_tags)
        correct += sum(1 for p, g in zip(predicted_tags, gold_tags) if p == g)
        total += len(gold_tags)
    if total == 0:
        raise DataError("cannot compute accuracy over zero tokens")
    return correct / total


def confusion_matrix(
    predicted: Sequence[Sequence[str]],
    gold: Sequence[Sequence[str]],
) -> dict[str, dict[str, int]]:
    """Token-level confusion counts: ``matrix[gold_tag][predicted_tag]``.

    The outside tag participates, which makes boundary errors visible.
    """
    require_equal_lengths("predicted", predicted, "gold", gold)
    matrix: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for predicted_tags, gold_tags in zip(predicted, gold):
        require_equal_lengths("predicted_tags", predicted_tags, "gold_tags", gold_tags)
        for predicted_tag, gold_tag in zip(predicted_tags, gold_tags):
            matrix[gold_tag or OUTSIDE_TAG][predicted_tag or OUTSIDE_TAG] += 1
    return {gold_tag: dict(row) for gold_tag, row in matrix.items()}
