"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows the paper's tables report; these
helpers keep that formatting in one place (fixed-width ASCII tables that read
well in CI logs and in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import DataError

__all__ = ["format_table", "format_matrix"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render ``rows`` as a fixed-width ASCII table.

    Args:
        headers: Column headers.
        rows: Row values; floats are formatted with ``float_format``.
        title: Optional title line printed above the table.
        float_format: Format spec applied to float cells.
    """
    if not headers:
        raise DataError("format_table requires at least one header")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise DataError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[column])), *(len(row[column]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(header).ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_matrix(
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    values: Mapping[str, Mapping[str, float]],
    *,
    title: str | None = None,
    corner: str = "",
) -> str:
    """Render a labelled 2-D matrix (used for the Table IV cross-corpus grid)."""
    headers = [corner, *column_labels]
    rows = []
    for row_label in row_labels:
        row: list[object] = [row_label]
        for column_label in column_labels:
            row.append(values.get(row_label, {}).get(column_label, float("nan")))
        rows.append(row)
    return format_table(headers, rows, title=title)
