"""K-fold cross-validation of NER models (Section II.F).

The paper validates its NER models with 5-fold cross-validation; this module
runs that protocol for any of the sequence-model families behind the
:class:`~repro.ner.model.NerModel` facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
import statistics

from repro.data.splits import k_fold_indices
from repro.errors import DataError
from repro.eval.metrics import EvaluationReport, evaluate_sequences
from repro.ner.features import TokenFeatureExtractor
from repro.ner.model import NerModel

__all__ = ["CrossValidationResult", "cross_validate_ner"]


@dataclass(frozen=True)
class CrossValidationResult:
    """Per-fold and aggregate cross-validation scores.

    Attributes:
        fold_reports: Entity-level evaluation report of every fold.
        mean_f1: Mean F1 across folds.
        std_f1: Population standard deviation of the fold F1 scores.
    """

    fold_reports: list[EvaluationReport]
    mean_f1: float
    std_f1: float

    @property
    def n_folds(self) -> int:
        """Number of folds evaluated."""
        return len(self.fold_reports)

    @property
    def mean_precision(self) -> float:
        """Mean precision across folds."""
        return statistics.fmean(report.precision for report in self.fold_reports)

    @property
    def mean_recall(self) -> float:
        """Mean recall across folds."""
        return statistics.fmean(report.recall for report in self.fold_reports)


def cross_validate_ner(
    token_sequences: Sequence[Sequence[str]],
    tag_sequences: Sequence[Sequence[str]],
    *,
    feature_extractor: TokenFeatureExtractor,
    model_family: str = "perceptron",
    n_folds: int = 5,
    seed: int | None = None,
    **model_options,
) -> CrossValidationResult:
    """Run k-fold cross-validation of an NER model.

    Args:
        token_sequences: Token sequences of the annotated dataset.
        tag_sequences: Gold tag sequences aligned with ``token_sequences``.
        feature_extractor: Feature extractor for the NER model.
        model_family: Sequence model family ("crf", "perceptron", "hmm").
        n_folds: Number of folds (the paper uses 5).
        seed: Seed for fold assignment and model training.
        **model_options: Forwarded to the sequence model constructor.
    """
    if len(token_sequences) != len(tag_sequences):
        raise DataError("token_sequences and tag_sequences must align")
    splits = k_fold_indices(len(token_sequences), n_folds, seed=seed)
    reports: list[EvaluationReport] = []
    for train_indices, test_indices in splits:
        model = NerModel(feature_extractor, family=model_family, seed=seed, **model_options)
        model.train(
            [token_sequences[index] for index in train_indices],
            [tag_sequences[index] for index in train_indices],
        )
        predictions = model.tag_batch([token_sequences[index] for index in test_indices])
        gold = [list(tag_sequences[index]) for index in test_indices]
        reports.append(evaluate_sequences(predictions, gold))
    f1_scores = [report.f1 for report in reports]
    return CrossValidationResult(
        fold_reports=reports,
        mean_f1=statistics.fmean(f1_scores),
        std_f1=statistics.pstdev(f1_scores) if len(f1_scores) > 1 else 0.0,
    )
