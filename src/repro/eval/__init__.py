"""Evaluation utilities: P/R/F1, confusion matrices, cross-validation, reports."""

from repro.eval.metrics import (
    EvaluationReport,
    LabelScore,
    confusion_matrix,
    entity_f1,
    evaluate_sequences,
    token_accuracy,
)
from repro.eval.crossval import CrossValidationResult, cross_validate_ner
from repro.eval.reports import format_matrix, format_table

__all__ = [
    "CrossValidationResult",
    "EvaluationReport",
    "LabelScore",
    "confusion_matrix",
    "cross_validate_ner",
    "entity_f1",
    "evaluate_sequences",
    "format_matrix",
    "format_table",
    "token_accuracy",
]
