"""Fig. 2 -- K-Means clusters of POS-frequency vectors and their PCA views.

The paper visualises the 23 clusters two ways: (a) cluster the 36-dimensional
vectors first and project to 2-D with PCA afterwards, and (b) project to 2-D
first and cluster the projections.  The figure's message is that the clusters
are separable in the high-dimensional space and correspond to interpretable
lexical-structure families ("3 teaspoons olive oil" lands with "2 tablespoons
all-purpose flour").

This experiment computes both variants plus the quantities that let the
claim be checked numerically instead of visually:

* the inertia curve over k and the elbow point,
* cluster-label agreement between the clustering and the generator's
  template families (purity),
* the 2-D coordinates and explained-variance ratios for both PCA variants,
* up to 50 representative phrases per cluster (what the figure scatters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.elbow import elbow_point, inertia_curve
from repro.cluster.kmeans import KMeans
from repro.cluster.pca import PCA
from repro.eval.reports import format_table
from repro.experiments.common import ExperimentCorpora, build_corpora, vectorizer_for

__all__ = ["Fig2Result", "run", "render", "cluster_purity"]


@dataclass(frozen=True)
class Fig2Result:
    """Clustering + PCA outputs behind Fig. 2.

    Attributes:
        n_clusters: Cluster count used (the paper's 23 by default).
        elbow_k: Cluster count suggested by the elbow criterion.
        inertia_by_k: Inertia curve over candidate k values.
        labels_cluster_then_project: Cluster labels from 36-D clustering (Fig 2a).
        labels_project_then_cluster: Cluster labels from 2-D clustering (Fig 2b).
        coordinates_2d: PCA projection of the vectors (shared by both panels).
        explained_variance_ratio: Variance captured by the two components.
        purity_high_dim / purity_low_dim: Agreement of each clustering with the
            generator's template families.
        representatives: cluster id -> up to 50 phrase texts (Fig 2's points).
    """

    n_clusters: int
    elbow_k: int
    inertia_by_k: dict[int, float]
    labels_cluster_then_project: np.ndarray
    labels_project_then_cluster: np.ndarray
    coordinates_2d: np.ndarray
    explained_variance_ratio: tuple[float, float]
    purity_high_dim: float
    purity_low_dim: float
    representatives: dict[int, list[str]]


def cluster_purity(labels: np.ndarray, families: list[str]) -> float:
    """Purity of a clustering against reference family labels.

    Each cluster votes for its majority family; purity is the fraction of
    items whose family matches their cluster's majority.
    """
    if len(labels) != len(families) or len(families) == 0:
        raise ValueError("labels and families must be non-empty and aligned")
    total_majority = 0
    for cluster in set(labels.tolist()):
        members = [families[index] for index in np.flatnonzero(labels == cluster)]
        counts: dict[str, int] = {}
        for family in members:
            counts[family] = counts.get(family, 0) + 1
        total_majority += max(counts.values())
    return total_majority / len(families)


def run(
    *,
    scale: str = "small",
    seed: int = 0,
    n_clusters: int = 23,
    k_candidates: tuple[int, ...] = (4, 8, 12, 16, 20, 23, 26, 30),
    corpora: ExperimentCorpora | None = None,
) -> Fig2Result:
    """Cluster the POS vectors of unique phrases and compute both PCA views."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    vectorizer = vectorizer_for(corpora.combined, seed=seed)
    unique = corpora.combined.unique_phrases()
    vectors = vectorizer.transform_tokenized([phrase.tokens for phrase in unique])
    families = [phrase.template_id for phrase in unique]

    candidates = [k for k in k_candidates if k <= len(unique)]
    curve = inertia_curve(vectors, candidates, seed=seed)
    elbow_k = elbow_point(curve)
    n_clusters = min(n_clusters, len(unique))

    # Fig. 2a: cluster in 36 dimensions, project afterwards.
    high_dim = KMeans(n_clusters, seed=seed).fit(vectors)
    pca = PCA(2).fit(vectors)
    coordinates = pca.transform(vectors)

    # Fig. 2b: project to 2 dimensions first, cluster the projections.
    low_dim = KMeans(n_clusters, seed=seed).fit(coordinates)

    representatives: dict[int, list[str]] = {}
    for cluster in range(n_clusters):
        member_indices = np.flatnonzero(high_dim.labels == cluster)[:50]
        representatives[cluster] = [unique[index].text for index in member_indices]

    ratio = tuple(float(value) for value in pca.explained_variance_ratio_[:2])
    return Fig2Result(
        n_clusters=n_clusters,
        elbow_k=elbow_k,
        inertia_by_k=curve,
        labels_cluster_then_project=high_dim.labels,
        labels_project_then_cluster=low_dim.labels,
        coordinates_2d=coordinates,
        explained_variance_ratio=(ratio[0], ratio[1] if len(ratio) > 1 else 0.0),
        purity_high_dim=cluster_purity(high_dim.labels, families),
        purity_low_dim=cluster_purity(low_dim.labels, families),
        representatives=representatives,
    )


def render(result: Fig2Result) -> str:
    """Summarise the clustering the way the figure caption does."""
    curve_rows = [[k, inertia] for k, inertia in sorted(result.inertia_by_k.items())]
    curve_table = format_table(
        ["k", "inertia"],
        curve_rows,
        title="Fig. 2: inertia curve (elbow criterion)",
        float_format="{:.1f}",
    )
    sizes = np.bincount(result.labels_cluster_then_project, minlength=result.n_clusters)
    summary = [
        f"clusters used: {result.n_clusters} (elbow suggests k = {result.elbow_k})",
        f"PCA explained variance (2 components): "
        f"{result.explained_variance_ratio[0]:.2f} + {result.explained_variance_ratio[1]:.2f}",
        f"cluster/template purity -- cluster-then-project: {result.purity_high_dim:.2f}, "
        f"project-then-cluster: {result.purity_low_dim:.2f}",
        f"cluster sizes: min {int(sizes.min())}, median {int(np.median(sizes))}, max {int(sizes.max())}",
    ]
    examples = []
    for cluster in sorted(result.representatives)[:5]:
        members = result.representatives[cluster][:3]
        examples.append(f"  cluster {cluster:2d}: " + " | ".join(members))
    return "\n".join([curve_table, *summary, "example clusters:", *examples])
