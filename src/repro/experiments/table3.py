"""Table III -- training and testing dataset sizes for the ingredient NER.

The paper builds its annotated sets by cluster-stratified sampling of unique
ingredient phrases: 1% / 0.33% per cluster for AllRecipes (1,470 train / 483
test) and 0.5% / 0.165% for FOOD.com (5,142 / 1,705), giving a combined set
of 6,612 / 2,188.  The reproduction corpus is far smaller, so the sampling
fractions are scaled up (keeping the AllRecipes fraction twice the FOOD.com
fraction, as in the paper) and the *ratios* are what the experiment checks:
the FOOD.com split is several times larger than the AllRecipes one, the
combined split is their sum, and each train set is roughly three times its
test set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import TrainingSetSelector
from repro.eval.reports import format_table
from repro.experiments.common import ExperimentCorpora, build_corpora, vectorizer_for

__all__ = ["Table3Result", "PAPER_SIZES", "run", "render"]

#: The paper's Table III values (train size, test size).
PAPER_SIZES: dict[str, tuple[int, int]] = {
    "AllRecipes": (1470, 483),
    "FOOD.com": (5142, 1705),
    "BOTH": (6612, 2188),
}

#: Per-cluster sampling fractions used by the reproduction.  The paper's
#: 0.01/0.0033 (AllRecipes) and 0.005/0.00165 (FOOD.com) target millions of
#: phrases; the reproduction keeps the same 2:1 and ~3:1 ratios at a scale
#: that yields usable training sets from thousands of phrases.
SAMPLING_FRACTIONS: dict[str, tuple[float, float]] = {
    "AllRecipes": (0.40, 0.13),
    "FOOD.com": (0.20, 0.066),
}


@dataclass(frozen=True)
class Table3Result:
    """Training/testing sizes produced by the selection stage.

    Attributes:
        sizes: corpus name -> (train size, test size).
        n_clusters: Cluster count used by the selector.
        paper_sizes: The paper's Table III values, for side-by-side rendering.
    """

    sizes: dict[str, tuple[int, int]]
    n_clusters: int
    paper_sizes: dict[str, tuple[int, int]]


def run(*, scale: str = "small", seed: int = 0, n_clusters: int = 23,
        corpora: ExperimentCorpora | None = None) -> Table3Result:
    """Run cluster-stratified selection on both corpora and the union."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    vectorizer = vectorizer_for(corpora.combined, seed=seed)

    sizes: dict[str, tuple[int, int]] = {}
    per_corpus_sets: dict[str, tuple[int, int]] = {}
    for name, corpus in (("AllRecipes", corpora.allrecipes), ("FOOD.com", corpora.foodcom)):
        train_fraction, test_fraction = SAMPLING_FRACTIONS[name]
        selector = TrainingSetSelector(
            vectorizer,
            n_clusters=n_clusters,
            train_fraction=train_fraction,
            test_fraction=test_fraction,
            seed=seed,
        )
        selection = selector.select(corpus.ingredient_phrases())
        per_corpus_sets[name] = (len(selection.train), len(selection.test))
        sizes[name] = per_corpus_sets[name]
    sizes["BOTH"] = (
        per_corpus_sets["AllRecipes"][0] + per_corpus_sets["FOOD.com"][0],
        per_corpus_sets["AllRecipes"][1] + per_corpus_sets["FOOD.com"][1],
    )
    return Table3Result(sizes=sizes, n_clusters=n_clusters, paper_sizes=dict(PAPER_SIZES))


def render(result: Table3Result) -> str:
    """Format the result like Table III, with the paper's numbers alongside."""
    headers = ["Dataset", "Train (ours)", "Test (ours)", "Train (paper)", "Test (paper)"]
    rows = []
    for name in ("AllRecipes", "FOOD.com", "BOTH"):
        ours = result.sizes[name]
        paper = result.paper_sizes[name]
        rows.append([name, ours[0], ours[1], paper[0], paper[1]])
    return format_table(
        headers,
        rows,
        title=f"Table III: NER dataset sizes (cluster-stratified sampling, k={result.n_clusters})",
    )
