"""Table V -- evaluation of the instruction-section NER model.

The instruction NER model is trained on the longest annotated instruction
steps (the paper annotates the longest recipes of 40 cuisines) and evaluated
on held-out steps; the table reports precision, recall and F1 for the
PROCESS and UTENSIL entity types, which is exactly what the paper's Table V
shows (Processes: P 0.92 / R 0.85 / F1 0.88; Utensils: P 0.94 / R 0.86 /
F1 0.90).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instruction_pipeline import InstructionPipeline
from repro.eval.metrics import EvaluationReport, evaluate_sequences
from repro.eval.reports import format_table
from repro.experiments.common import ExperimentCorpora, build_corpora

__all__ = ["Table5Result", "PAPER_SCORES", "run", "render"]

#: The paper's Table V values: label -> (precision, recall, F1).
PAPER_SCORES: dict[str, tuple[float, float, float]] = {
    "PROCESS": (0.92, 0.85, 0.88),
    "UTENSIL": (0.94, 0.86, 0.90),
}


@dataclass(frozen=True)
class Table5Result:
    """Instruction NER evaluation.

    Attributes:
        report: Full entity-level evaluation report over the held-out steps.
        scores: label -> (precision, recall, F1) restricted to PROCESS/UTENSIL.
        n_train_steps / n_test_steps: Split sizes.
        paper_scores: The paper's values for rendering side by side.
    """

    report: EvaluationReport
    scores: dict[str, tuple[float, float, float]]
    n_train_steps: int
    n_test_steps: int
    paper_scores: dict[str, tuple[float, float, float]]


def run(
    *,
    scale: str = "small",
    seed: int = 0,
    model_family: str = "perceptron",
    training_steps: int = 150,
    corpora: ExperimentCorpora | None = None,
) -> Table5Result:
    """Train the instruction NER model and score PROCESS / UTENSIL extraction."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    steps = corpora.combined.instruction_steps()
    ranked = sorted(steps, key=lambda step: len(step.tokens), reverse=True)
    budget = min(training_steps, max(1, len(ranked) // 2))
    train_steps = ranked[:budget]
    test_steps = ranked[budget : budget + max(1, budget)]

    pipeline = InstructionPipeline(model_family=model_family, seed=seed)
    pipeline.train(train_steps)
    pipeline.build_dictionaries([list(step.tokens) for step in steps])

    predictions = [pipeline.tag_tokens(list(step.tokens)) for step in test_steps]
    gold = [list(step.ner_tags) for step in test_steps]
    report = evaluate_sequences(predictions, gold)
    scores = {
        label: (
            report.score_for(label).precision,
            report.score_for(label).recall,
            report.score_for(label).f1,
        )
        for label in ("PROCESS", "UTENSIL")
    }
    return Table5Result(
        report=report,
        scores=scores,
        n_train_steps=len(train_steps),
        n_test_steps=len(test_steps),
        paper_scores=dict(PAPER_SCORES),
    )


def render(result: Table5Result) -> str:
    """Format the measured scores next to the paper's Table V."""
    headers = [
        "Entity",
        "Precision (ours)",
        "Recall (ours)",
        "F1 (ours)",
        "Precision (paper)",
        "Recall (paper)",
        "F1 (paper)",
    ]
    rows = []
    for label in ("PROCESS", "UTENSIL"):
        ours = result.scores[label]
        paper = result.paper_scores[label]
        rows.append([label.title() + "es" if label == "PROCESS" else "Utensils", *ours, *paper])
    table = format_table(
        headers,
        rows,
        title="Table V: Instruction-section NER (Processes and Utensils)",
        float_format="{:.2f}",
    )
    return (
        f"{table}\n"
        f"Trained on {result.n_train_steps} steps, evaluated on {result.n_test_steps} steps; "
        f"micro F1 over all labels: {result.report.f1:.4f}"
    )
