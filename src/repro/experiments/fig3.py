"""Fig. 3 -- dependency-parsed structure of a typical instruction.

The paper shows the spaCy parse of an instruction sentence; the reproduction
parses the same kind of sentence with the rule-based recipe parser (and the
trainable transition parser, for comparison) and reports the arcs plus the
attachment accuracy of the transition parser against the rule parser on a
sample of corpus instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentCorpora, build_corpora, train_pos_tagger
from repro.parsing.rules import RecipeDependencyParser
from repro.parsing.transition import TransitionDependencyParser
from repro.parsing.tree import DependencyTree
from repro.text.tokenizer import tokenize

__all__ = ["Fig3Result", "EXAMPLE_INSTRUCTION", "run", "render"]

#: Instruction used for the rendered parse (same spirit as the paper's Fig. 3/4
#: example, which begins "Bring a large pot of lightly salted water to a boil").
EXAMPLE_INSTRUCTION = "Bring the water to a boil in a large pot."


@dataclass(frozen=True)
class Fig3Result:
    """Dependency parses and parser-agreement statistics.

    Attributes:
        example_tree: Rule-parser tree of the example instruction.
        example_transition_tree: Transition-parser tree of the same sentence.
        attachment_agreement: Unlabelled attachment agreement between the two
            parsers over a sample of corpus instructions.
        verbs_with_objects: Fraction of parsed clauses whose root verb has at
            least one object-like dependent (what relation extraction needs).
    """

    example_tree: DependencyTree
    example_transition_tree: DependencyTree
    attachment_agreement: float
    verbs_with_objects: float


def run(*, scale: str = "small", seed: int = 0, sample_size: int = 120,
        corpora: ExperimentCorpora | None = None) -> Fig3Result:
    """Parse the example instruction and measure parser agreement on a sample."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    tagger = train_pos_tagger(corpora.combined, seed=seed)
    rule_parser = RecipeDependencyParser()

    steps = corpora.combined.instruction_steps()[:sample_size]
    rule_trees: list[DependencyTree] = []
    for step in steps:
        rule_trees.append(rule_parser.parse(list(step.tokens), list(step.pos_tags)))

    transition_parser = TransitionDependencyParser(iterations=4, seed=seed)
    transition_parser.train(rule_trees)

    tokens = tokenize(EXAMPLE_INSTRUCTION)
    pos_tags = tagger.tag_sequence(tokens)
    example_tree = rule_parser.parse(tokens, pos_tags)
    example_transition_tree = transition_parser.parse(tokens, pos_tags)

    agreements = 0
    total = 0
    with_objects = 0
    for step, rule_tree in zip(steps, rule_trees):
        predicted = transition_parser.parse(list(step.tokens), list(step.pos_tags))
        for index in range(len(rule_tree)):
            total += 1
            if predicted.head_of(index) == rule_tree.head_of(index):
                agreements += 1
        roots = rule_tree.roots()
        if roots and any(
            rule_tree.label_of(child) in {"dobj", "nsubj", "prep"}
            for root in roots
            for child in rule_tree.children(root)
        ):
            with_objects += 1

    return Fig3Result(
        example_tree=example_tree,
        example_transition_tree=example_transition_tree,
        attachment_agreement=agreements / total if total else 0.0,
        verbs_with_objects=with_objects / len(steps) if steps else 0.0,
    )


def render(result: Fig3Result) -> str:
    """Print the example parse as an arc list (textual Fig. 3)."""
    lines = [
        f"Fig. 3: dependency parse of {EXAMPLE_INSTRUCTION!r} (rule-based parser)",
        result.example_tree.pretty(),
        "",
        "Same sentence, trainable arc-standard parser:",
        result.example_transition_tree.pretty(),
        "",
        f"Unlabelled attachment agreement (transition vs rule parser): "
        f"{result.attachment_agreement:.2%}",
        f"Clauses whose root verb has object-like dependents: {result.verbs_with_objects:.2%}",
    ]
    return "\n".join(lines)
