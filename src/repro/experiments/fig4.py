"""Fig. 4 -- instruction-section NER inference on a recipe's instructions.

The paper shows the entity tags the instruction NER model assigns to one
recipe's instruction steps.  The reproduction trains the full pipeline,
takes one recipe from the held-out corpus, and reports the tagged tokens of
each step together with entity-level agreement against the generator's gold
tags for that recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.models import Recipe
from repro.eval.metrics import evaluate_sequences
from repro.experiments.common import ExperimentCorpora, build_corpora, train_modeler

__all__ = ["Fig4Result", "run", "render"]


@dataclass(frozen=True)
class Fig4Result:
    """Tagged instruction steps of one recipe.

    Attributes:
        recipe_title: Title of the recipe whose instructions are shown.
        tagged_steps: Per step, the list of (token, predicted tag) pairs.
        entity_f1: Entity-level F1 of those predictions against the gold tags.
    """

    recipe_title: str
    tagged_steps: list[list[tuple[str, str]]]
    entity_f1: float


def _pick_demo_recipe(recipes: list[Recipe]) -> Recipe:
    """Use the recipe with the longest instruction section (like the paper)."""
    return max(recipes, key=lambda recipe: sum(len(step.tokens) for step in recipe.instructions))


def run(*, scale: str = "small", seed: int = 0,
        corpora: ExperimentCorpora | None = None) -> Fig4Result:
    """Tag the instruction section of a representative recipe."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    modeler = train_modeler(corpora.combined, seed=seed)
    recipe = _pick_demo_recipe(corpora.combined.recipes)

    pipeline = modeler.components.instruction_pipeline
    tagged_steps: list[list[tuple[str, str]]] = []
    predictions: list[list[str]] = []
    gold: list[list[str]] = []
    for step in recipe.instructions:
        tags = pipeline.tag_tokens(list(step.tokens))
        tagged_steps.append(list(zip(step.tokens, tags)))
        predictions.append(tags)
        gold.append(list(step.ner_tags))

    return Fig4Result(
        recipe_title=recipe.title,
        tagged_steps=tagged_steps,
        entity_f1=evaluate_sequences(predictions, gold).f1,
    )


def render(result: Fig4Result) -> str:
    """Render the tagged steps the way Fig. 4 annotates them inline."""
    lines = [f"Fig. 4: instruction NER inference for {result.recipe_title!r}"]
    for index, step in enumerate(result.tagged_steps):
        rendered = " ".join(
            token if tag == "O" else f"[{token}]{{{tag}}}" for token, tag in step
        )
        lines.append(f"  step {index + 1}: {rendered}")
    lines.append(f"entity-level F1 on this recipe: {result.entity_f1:.4f}")
    return "\n".join(lines)
