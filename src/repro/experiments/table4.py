"""Table IV -- cross-corpus evaluation of the ingredient NER model.

Three models are trained (on the AllRecipes sample, the FOOD.com sample and
their union) and each is evaluated on the three test sets, giving the 3x3 F1
matrix of Table IV.  The paper's qualitative findings that the reproduction
checks:

* every model is strongest (or tied) on its own corpus,
* the AllRecipes-only model degrades most on FOOD.com (the larger, more
  heterogeneous corpus),
* the combined model is competitive everywhere (within a few points of the
  best single-corpus model on each test set).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ingredient_pipeline import IngredientPipeline
from repro.core.selection import TrainingSetSelector
from repro.data.models import AnnotatedPhrase
from repro.eval.metrics import evaluate_sequences
from repro.eval.reports import format_matrix
from repro.experiments.common import ExperimentCorpora, build_corpora, vectorizer_for
from repro.experiments.table3 import SAMPLING_FRACTIONS

__all__ = ["Table4Result", "PAPER_MATRIX", "run", "render"]

#: The paper's Table IV (rows = testing set, columns = training set).
PAPER_MATRIX: dict[str, dict[str, float]] = {
    "AllRecipes": {"AllRecipes": 0.9682, "FOOD.com": 0.9317, "BOTH": 0.9709},
    "FOOD.com": {"AllRecipes": 0.8672, "FOOD.com": 0.9519, "BOTH": 0.9498},
    "BOTH": {"AllRecipes": 0.8972, "FOOD.com": 0.9472, "BOTH": 0.9611},
}

_CORPUS_NAMES = ("AllRecipes", "FOOD.com", "BOTH")


@dataclass(frozen=True)
class Table4Result:
    """Cross-corpus F1 matrix.

    Attributes:
        matrix: ``matrix[test_set][training_set]`` = entity-level F1.
        train_sizes / test_sizes: Number of phrases in each split.
        paper_matrix: The paper's Table IV values, for rendering side by side.
    """

    matrix: dict[str, dict[str, float]]
    train_sizes: dict[str, int]
    test_sizes: dict[str, int]
    paper_matrix: dict[str, dict[str, float]]


def _select_sets(
    corpora: ExperimentCorpora, *, seed: int, n_clusters: int
) -> tuple[dict[str, list[AnnotatedPhrase]], dict[str, list[AnnotatedPhrase]]]:
    """Cluster-stratified train/test phrase sets per corpus plus the union."""
    vectorizer = vectorizer_for(corpora.combined, seed=seed)
    train_sets: dict[str, list[AnnotatedPhrase]] = {}
    test_sets: dict[str, list[AnnotatedPhrase]] = {}
    for name, corpus in (("AllRecipes", corpora.allrecipes), ("FOOD.com", corpora.foodcom)):
        train_fraction, test_fraction = SAMPLING_FRACTIONS[name]
        selector = TrainingSetSelector(
            vectorizer,
            n_clusters=n_clusters,
            train_fraction=train_fraction,
            test_fraction=test_fraction,
            seed=seed,
        )
        selection = selector.select(corpus.ingredient_phrases())
        train_sets[name] = selection.train
        test_sets[name] = selection.test
    train_sets["BOTH"] = train_sets["AllRecipes"] + train_sets["FOOD.com"]
    test_sets["BOTH"] = test_sets["AllRecipes"] + test_sets["FOOD.com"]
    return train_sets, test_sets


def run(
    *,
    scale: str = "small",
    seed: int = 0,
    n_clusters: int = 23,
    model_family: str = "perceptron",
    corpora: ExperimentCorpora | None = None,
) -> Table4Result:
    """Train the three models and fill the 3x3 cross-corpus F1 matrix."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    train_sets, test_sets = _select_sets(corpora, seed=seed, n_clusters=n_clusters)

    models: dict[str, IngredientPipeline] = {}
    for name in _CORPUS_NAMES:
        pipeline = IngredientPipeline(model_family=model_family, seed=seed)
        models[name] = pipeline.train(train_sets[name])

    matrix: dict[str, dict[str, float]] = {test_name: {} for test_name in _CORPUS_NAMES}
    for test_name in _CORPUS_NAMES:
        gold = [list(phrase.ner_tags) for phrase in test_sets[test_name]]
        tokens = [list(phrase.tokens) for phrase in test_sets[test_name]]
        for train_name in _CORPUS_NAMES:
            predictions = [models[train_name].tag_tokens(sequence) for sequence in tokens]
            matrix[test_name][train_name] = evaluate_sequences(predictions, gold).f1

    return Table4Result(
        matrix=matrix,
        train_sizes={name: len(train_sets[name]) for name in _CORPUS_NAMES},
        test_sizes={name: len(test_sets[name]) for name in _CORPUS_NAMES},
        paper_matrix={key: dict(value) for key, value in PAPER_MATRIX.items()},
    )


def render(result: Table4Result) -> str:
    """Format the measured and paper matrices side by side."""
    ours = format_matrix(
        list(_CORPUS_NAMES),
        list(_CORPUS_NAMES),
        result.matrix,
        title="Table IV (ours): F1 by testing set (rows) and training set (columns)",
        corner="Testing \\ Training",
    )
    paper = format_matrix(
        list(_CORPUS_NAMES),
        list(_CORPUS_NAMES),
        result.paper_matrix,
        title="Table IV (paper)",
        corner="Testing \\ Training",
    )
    sizes = ", ".join(
        f"{name}: {result.train_sizes[name]} train / {result.test_sizes[name]} test"
        for name in _CORPUS_NAMES
    )
    return f"{ours}\n\n{paper}\n\nSplit sizes -- {sizes}"
