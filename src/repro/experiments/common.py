"""Shared infrastructure for the experiment modules.

The paper's corpus (118k recipes; 16k AllRecipes + 102k FOOD.com) is scaled
down here so every experiment runs on a laptop in seconds while keeping the
~1:6 source ratio.  ``SCALE_*`` presets control the size; benchmarks default
to ``small`` and the CLI accepts ``--scale``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ingredient_pipeline import IngredientPipeline
from repro.core.pipeline import RecipeModeler, RecipeModelerConfig
from repro.data.generator import GeneratorConfig, RecipeCorpusGenerator
from repro.data.models import AnnotatedPhrase, Recipe, Source
from repro.data.recipedb import RecipeDB
from repro.errors import ConfigurationError
from repro.pos.tagger import PerceptronPosTagger
from repro.pos.vectorizer import PosBagOfWordsVectorizer

__all__ = [
    "CORPUS_SCALES",
    "ExperimentCorpora",
    "build_corpora",
    "train_modeler",
    "train_pos_tagger",
    "unique_phrases",
]

#: Recipe counts (AllRecipes, FOOD.com) per scale preset.  The real RecipeDB
#: ratio is roughly 16,000 : 102,000; the presets keep a ~1:4-6 ratio.
CORPUS_SCALES: dict[str, tuple[int, int]] = {
    "tiny": (12, 24),
    "small": (30, 90),
    "medium": (60, 240),
    "large": (150, 600),
}


@dataclass(frozen=True)
class ExperimentCorpora:
    """The three corpora every multi-corpus experiment works with.

    Attributes:
        allrecipes: AllRecipes-profile corpus.
        foodcom: FOOD.com-profile corpus.
        combined: Union corpus (both sources).
    """

    allrecipes: RecipeDB
    foodcom: RecipeDB
    combined: RecipeDB

    def named(self) -> dict[str, RecipeDB]:
        """Mapping used by Table III / Table IV ("AllRecipes", "FOOD.com", "BOTH")."""
        return {
            "AllRecipes": self.allrecipes,
            "FOOD.com": self.foodcom,
            "BOTH": self.combined,
        }


def build_corpora(*, scale: str = "small", seed: int = 0) -> ExperimentCorpora:
    """Generate the AllRecipes / FOOD.com / combined corpora for one scale."""
    if scale not in CORPUS_SCALES:
        raise ConfigurationError(
            f"unknown corpus scale {scale!r}; choose one of {sorted(CORPUS_SCALES)}"
        )
    n_allrecipes, n_foodcom = CORPUS_SCALES[scale]
    allrecipes = RecipeCorpusGenerator(
        GeneratorConfig(source=Source.ALLRECIPES, seed=seed)
    ).generate_corpus(n_allrecipes)
    foodcom = RecipeCorpusGenerator(
        GeneratorConfig(source=Source.FOOD_COM, seed=seed + 1)
    ).generate_corpus(n_foodcom)
    return ExperimentCorpora(
        allrecipes=RecipeDB(allrecipes),
        foodcom=RecipeDB(foodcom),
        combined=RecipeDB(list(allrecipes) + list(foodcom)),
    )


def train_pos_tagger(corpus: RecipeDB, *, seed: int = 0, cap: int = 1500) -> PerceptronPosTagger:
    """Train a POS tagger on the gold POS annotations of ``corpus``."""
    sentences: list[list[str]] = []
    tags: list[list[str]] = []
    for phrase in corpus.ingredient_phrases()[: cap // 2]:
        sentences.append(list(phrase.tokens))
        tags.append(list(phrase.pos_tags))
    for step in corpus.instruction_steps()[: cap - len(sentences)]:
        sentences.append(list(step.tokens))
        tags.append(list(step.pos_tags))
    tagger = PerceptronPosTagger()
    tagger.train(sentences, tags, iterations=5, seed=seed)
    return tagger


def train_modeler(
    corpus: RecipeDB,
    *,
    seed: int = 0,
    model_family: str = "perceptron",
    instruction_training_steps: int = 150,
) -> RecipeModeler:
    """Fit the end-to-end :class:`RecipeModeler` on ``corpus``."""
    modeler = RecipeModeler(
        RecipeModelerConfig(
            model_family=model_family,
            seed=seed,
            instruction_training_steps=instruction_training_steps,
        )
    )
    return modeler.fit(corpus)


def unique_phrases(corpus: RecipeDB) -> list[AnnotatedPhrase]:
    """Unique ingredient phrases of a corpus (first-seen order)."""
    return corpus.unique_phrases()


def vectorizer_for(corpus: RecipeDB, *, seed: int = 0) -> PosBagOfWordsVectorizer:
    """POS vectoriser built from a tagger trained on ``corpus``."""
    return PosBagOfWordsVectorizer(train_pos_tagger(corpus, seed=seed))


def train_ingredient_pipeline(
    phrases: list[AnnotatedPhrase], *, seed: int = 0, model_family: str = "perceptron"
) -> IngredientPipeline:
    """Train an ingredient NER pipeline directly on annotated phrases."""
    pipeline = IngredientPipeline(model_family=model_family, seed=seed)
    return pipeline.train(phrases)


def recipes_with_instruction_text(corpus: RecipeDB) -> list[Recipe]:
    """Recipes sorted by total instruction length, longest first (paper heuristic)."""
    return sorted(
        corpus.recipes,
        key=lambda recipe: sum(len(step.tokens) for step in recipe.instructions),
        reverse=True,
    )
