"""Conclusion-section statistics of the paper.

The paper reports three corpus-level numbers obtained by running the full
pipeline over RecipeDB:

* 20,280 unique ingredient names extracted from 118,000 recipes (with aliases
  still counted separately);
* the instruction pipeline applied to 40,000 recipes / 174,932 steps;
* an average of 6.164 relations per instruction with standard deviation 5.70,
  the large spread being the argument for many-to-many modelling.

The reproduction computes the same statistics on the simulated corpus.  The
absolute counts scale with corpus size; the *shape* checks are that the
unique-name count exceeds the number of distinct lexicon ingredients (because
aliases, misspellings and modifier variants are counted separately), and that
the relation count per step has a standard deviation comparable to its mean.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.applications.aliases import AliasAnalyzer
from repro.experiments.common import ExperimentCorpora, build_corpora, train_modeler

__all__ = ["ConclusionsResult", "PAPER_STATS", "run", "render"]

#: The paper's reported statistics.
PAPER_STATS = {
    "unique_ingredient_names": 20_280,
    "recipes_processed": 40_000,
    "instruction_steps": 174_932,
    "mean_relations_per_instruction": 6.164,
    "std_relations_per_instruction": 5.70,
}


@dataclass(frozen=True)
class ConclusionsResult:
    """Corpus-level statistics from the full pipeline.

    Attributes:
        recipes_processed: Number of recipes run through the pipeline.
        instruction_steps: Number of instruction steps processed.
        unique_ingredient_names: Distinct canonical names extracted by the
            ingredient pipeline (aliases counted separately, as in the paper).
        unique_names_after_alias_merge: Same, after alias merging.
        mean_relations_per_instruction: Mean (process, entity) pairs per step.
        std_relations_per_instruction: Standard deviation of that count.
        max_relations_per_instruction: Largest per-step relation count.
    """

    recipes_processed: int
    instruction_steps: int
    unique_ingredient_names: int
    unique_names_after_alias_merge: int
    mean_relations_per_instruction: float
    std_relations_per_instruction: float
    max_relations_per_instruction: int


def run(*, scale: str = "small", seed: int = 0, max_recipes: int | None = 60,
        corpora: ExperimentCorpora | None = None) -> ConclusionsResult:
    """Run the full pipeline over the corpus and aggregate the statistics."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    modeler = train_modeler(corpora.combined, seed=seed)
    recipes = corpora.combined.recipes
    if max_recipes is not None:
        recipes = recipes[:max_recipes]

    unique_names: set[str] = set()
    relation_counts: list[int] = []
    steps = 0
    for recipe in recipes:
        structured = modeler.model_recipe(recipe)
        unique_names.update(name for name in structured.ingredient_names if name)
        for event in structured.events:
            steps += 1
            relation_counts.append(event.relation_count)

    analyzer = AliasAnalyzer()
    merged = analyzer.analyze(unique_names).merged_count if unique_names else 0
    mean_relations = statistics.fmean(relation_counts) if relation_counts else 0.0
    std_relations = statistics.pstdev(relation_counts) if len(relation_counts) > 1 else 0.0
    return ConclusionsResult(
        recipes_processed=len(recipes),
        instruction_steps=steps,
        unique_ingredient_names=len(unique_names),
        unique_names_after_alias_merge=merged,
        mean_relations_per_instruction=mean_relations,
        std_relations_per_instruction=std_relations,
        max_relations_per_instruction=max(relation_counts) if relation_counts else 0,
    )


def render(result: ConclusionsResult) -> str:
    """Report the measured statistics next to the paper's."""
    lines = [
        "Conclusion statistics (ours vs paper):",
        f"  recipes processed:                 {result.recipes_processed} "
        f"(paper: {PAPER_STATS['recipes_processed']})",
        f"  instruction steps:                 {result.instruction_steps} "
        f"(paper: {PAPER_STATS['instruction_steps']})",
        f"  unique ingredient names:           {result.unique_ingredient_names} "
        f"(paper: {PAPER_STATS['unique_ingredient_names']})",
        f"  ... after alias merging:           {result.unique_names_after_alias_merge}",
        f"  mean relations per instruction:    {result.mean_relations_per_instruction:.3f} "
        f"(paper: {PAPER_STATS['mean_relations_per_instruction']})",
        f"  std of relations per instruction:  {result.std_relations_per_instruction:.3f} "
        f"(paper: {PAPER_STATS['std_relations_per_instruction']})",
        f"  max relations in one instruction:  {result.max_relations_per_instruction}",
    ]
    return "\n".join(lines)
