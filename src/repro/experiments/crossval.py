"""Section II.F -- 5-fold cross-validation of the ingredient NER model.

The paper validates its NER models by 5-fold cross-validation over the
annotated phrase sets; this experiment runs that protocol on the
cluster-stratified sample of the combined corpus and reports per-fold and
aggregate F1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import TrainingSetSelector
from repro.eval.crossval import CrossValidationResult, cross_validate_ner
from repro.experiments.common import ExperimentCorpora, build_corpora, vectorizer_for
from repro.ner.features import IngredientFeatureExtractor

__all__ = ["CrossvalResult", "run", "render"]


@dataclass(frozen=True)
class CrossvalResult:
    """Cross-validation outcome.

    Attributes:
        result: Per-fold and aggregate scores.
        n_phrases: Number of annotated phrases entering the protocol.
        model_family: Sequence-model family evaluated.
    """

    result: CrossValidationResult
    n_phrases: int
    model_family: str


def run(
    *,
    scale: str = "small",
    seed: int = 0,
    n_folds: int = 5,
    model_family: str = "perceptron",
    corpora: ExperimentCorpora | None = None,
) -> CrossvalResult:
    """Run k-fold cross-validation on the cluster-stratified annotated sample."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    vectorizer = vectorizer_for(corpora.combined, seed=seed)
    selector = TrainingSetSelector(
        vectorizer, n_clusters=23, train_fraction=0.30, test_fraction=0.10, seed=seed
    )
    selection = selector.select(corpora.combined.ingredient_phrases())
    phrases = selection.train + selection.test

    result = cross_validate_ner(
        [list(phrase.tokens) for phrase in phrases],
        [list(phrase.ner_tags) for phrase in phrases],
        feature_extractor=IngredientFeatureExtractor(),
        model_family=model_family,
        n_folds=n_folds,
        seed=seed,
    )
    return CrossvalResult(result=result, n_phrases=len(phrases), model_family=model_family)


def render(result: CrossvalResult) -> str:
    """Report per-fold and mean F1 like the paper's validation paragraph."""
    folds = ", ".join(f"{report.f1:.4f}" for report in result.result.fold_reports)
    return "\n".join(
        [
            f"{result.result.n_folds}-fold cross-validation of the ingredient NER "
            f"({result.model_family}, {result.n_phrases} phrases)",
            f"  per-fold F1: {folds}",
            f"  mean F1:     {result.result.mean_f1:.4f} (+/- {result.result.std_f1:.4f})",
            f"  mean P/R:    {result.result.mean_precision:.4f} / {result.result.mean_recall:.4f}",
        ]
    )
