"""Table I -- example NER annotations on the ingredients section.

The paper shows the trained ingredient NER model applied to the seven
ingredient phrases of the "Tomato and Blue Cheese Tart" recipe.  This
experiment trains the pipeline on a simulated corpus, runs it on exactly
those seven phrases and prints the resulting attribute table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recipe_model import IngredientRecord
from repro.eval.reports import format_table
from repro.experiments.common import build_corpora, train_modeler

__all__ = ["PAPER_PHRASES", "Table1Result", "run", "render"]

#: The seven ingredient phrases of Table I, verbatim from the paper.
PAPER_PHRASES: tuple[str, ...] = (
    "1 sheet frozen puff pastry ( thawed )",
    "6 ounces blue cheese,at room temperature",
    "1 tablespoon whole milk ( or half-and-half )",
    "2-3 medium tomatoes",
    "1/2 teaspoon pepper,freshly ground",
    "1/2 teaspoon fresh thyme,minced",
    "1 teaspoon extra virgin olive oil",
)

#: The paper's own annotations for those phrases (used to compare coverage).
PAPER_EXPECTED_ATTRIBUTES: dict[str, dict[str, str]] = {
    "1 sheet frozen puff pastry ( thawed )": {
        "Name": "puff pastry", "State": "thawed", "Quantity": "1",
        "Unit": "sheet", "Temperature": "frozen",
    },
    "6 ounces blue cheese,at room temperature": {
        "Name": "blue cheese", "Quantity": "6", "Unit": "ounce",
    },
    "1 tablespoon whole milk ( or half-and-half )": {
        "Name": "milk", "Quantity": "1", "Unit": "tablespoon",
    },
    "2-3 medium tomatoes": {
        "Name": "tomato", "Quantity": "2-3", "Size": "medium",
    },
    "1/2 teaspoon pepper,freshly ground": {
        "Name": "pepper", "State": "ground", "Quantity": "1/2", "Unit": "teaspoon",
    },
    "1/2 teaspoon fresh thyme,minced": {
        "Name": "thyme", "State": "minced", "Quantity": "1/2",
        "Unit": "teaspoon", "Dry/Fresh": "fresh",
    },
    "1 teaspoon extra virgin olive oil": {
        "Name": "extra virgin olive oil", "Quantity": "1", "Unit": "teaspoon",
    },
}


@dataclass(frozen=True)
class Table1Result:
    """Records extracted for the paper's seven example phrases.

    Attributes:
        records: One :class:`IngredientRecord` per example phrase.
        attribute_agreement: Fraction of the paper's non-empty attribute cells
            that the reproduction filled with a matching value (NAME compared
            by head-word overlap, other attributes by equality).
    """

    records: list[IngredientRecord]
    attribute_agreement: float


def run(*, scale: str = "small", seed: int = 0) -> Table1Result:
    """Train the pipeline and annotate the Table I phrases."""
    corpora = build_corpora(scale=scale, seed=seed)
    modeler = train_modeler(corpora.combined, seed=seed)
    records = [
        modeler.components.ingredient_pipeline.extract_record(phrase)
        for phrase in PAPER_PHRASES
    ]
    agreement = _attribute_agreement(records)
    return Table1Result(records=records, attribute_agreement=agreement)


def _attribute_agreement(records: list[IngredientRecord]) -> float:
    """Compare extracted attributes against the paper's published cells."""
    matched = 0
    total = 0
    for record in records:
        expected = PAPER_EXPECTED_ATTRIBUTES.get(record.phrase, {})
        produced = record.as_row()
        for attribute, expected_value in expected.items():
            total += 1
            produced_value = produced.get(attribute, "").lower()
            expected_value = expected_value.lower()
            if attribute == "Name":
                expected_words = set(expected_value.split())
                produced_words = set(produced_value.split())
                if expected_words & produced_words:
                    matched += 1
            elif produced_value == expected_value or expected_value in produced_value:
                matched += 1
    return matched / total if total else 0.0


def render(result: Table1Result) -> str:
    """Format the result like Table I of the paper."""
    headers = ["Ingredient Phrase", "Name", "State", "Quantity", "Unit", "Temperature", "Dry/Fresh", "Size"]
    rows = [
        [
            record.phrase,
            record.name,
            record.state,
            record.quantity,
            record.unit,
            record.temperature,
            record.dry_fresh,
            record.size,
        ]
        for record in result.records
    ]
    table = format_table(
        headers,
        rows,
        title="Table I: Annotations on the Ingredients Section by the NER model",
    )
    return f"{table}\nAttribute agreement with the paper's cells: {result.attribute_agreement:.2%}"
