"""Fig. 5 -- many-to-many relation tuples extracted from an instruction.

The paper's example: in "Bring the water to a boil in a large pot", the
process *Bring* relates to both the ingredient *water* and the utensil
*pot*, and the two one-to-one relations are combined into one many-to-many
tuple because they share the same process.  The reproduction runs the full
relation extractor over the example instruction and over a corpus sample,
and scores the extracted tuples against the generator's gold relations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.recipe_model import RelationTuple
from repro.data.models import GoldRelation
from repro.experiments.common import ExperimentCorpora, build_corpora, train_modeler
from repro.experiments.fig3 import EXAMPLE_INSTRUCTION
from repro.text.tokenizer import tokenize

__all__ = ["Fig5Result", "run", "render", "relation_scores"]


@dataclass(frozen=True)
class Fig5Result:
    """Extracted relation tuples and their agreement with gold relations.

    Attributes:
        example_relations: Tuples extracted from the Fig. 3/5 example sentence.
        precision / recall / f1: Pair-level scores of extracted (process,
            entity) pairs against gold pairs over a corpus sample.
        evaluated_steps: Number of instruction steps scored.
    """

    example_relations: list[RelationTuple]
    precision: float
    recall: float
    f1: float
    evaluated_steps: int


def _gold_pairs(relations: tuple[GoldRelation, ...]) -> set[tuple[str, str]]:
    pairs: set[tuple[str, str]] = set()
    for relation in relations:
        for entity in relation.ingredients + relation.utensils:
            pairs.add((relation.process, entity))
        if not relation.ingredients and not relation.utensils:
            pairs.add((relation.process, ""))
    return pairs


def _predicted_pairs(relations: list[RelationTuple]) -> set[tuple[str, str]]:
    pairs: set[tuple[str, str]] = set()
    for relation in relations:
        for process, entity in relation.as_pairs():
            pairs.add((process, entity))
    return pairs


def relation_scores(
    predicted: list[list[RelationTuple]], gold: list[tuple[GoldRelation, ...]]
) -> tuple[float, float, float]:
    """Micro precision/recall/F1 over (process, entity) pairs."""
    true_positives = 0
    predicted_total = 0
    gold_total = 0
    for predicted_relations, gold_relations in zip(predicted, gold):
        predicted_set = _predicted_pairs(predicted_relations)
        gold_set = _gold_pairs(gold_relations)
        true_positives += len(predicted_set & gold_set)
        predicted_total += len(predicted_set)
        gold_total += len(gold_set)
    precision = true_positives / predicted_total if predicted_total else 0.0
    recall = true_positives / gold_total if gold_total else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def run(*, scale: str = "small", seed: int = 0, sample_size: int = 150,
        corpora: ExperimentCorpora | None = None) -> Fig5Result:
    """Extract relations from the example sentence and a corpus sample."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    modeler = train_modeler(corpora.combined, seed=seed)
    components = modeler.components

    tokens = tokenize(EXAMPLE_INSTRUCTION)
    tags = components.instruction_pipeline.tag_tokens(tokens)
    example_relations = components.relation_extractor.extract(tokens, tags)

    steps = corpora.combined.instruction_steps()[:sample_size]
    predicted: list[list[RelationTuple]] = []
    gold: list[tuple[GoldRelation, ...]] = []
    for step in steps:
        step_tags = components.instruction_pipeline.tag_tokens(list(step.tokens))
        predicted.append(
            components.relation_extractor.extract(
                list(step.tokens), step_tags, pos_tags=list(step.pos_tags)
            )
        )
        gold.append(step.relations)
    precision, recall, f1 = relation_scores(predicted, gold)

    return Fig5Result(
        example_relations=example_relations,
        precision=precision,
        recall=recall,
        f1=f1,
        evaluated_steps=len(steps),
    )


def render(result: Fig5Result) -> str:
    """Render the example tuples the way Fig. 5 lists them."""
    lines = [f"Fig. 5: relations extracted from {EXAMPLE_INSTRUCTION!r}"]
    for relation in result.example_relations:
        lines.append(
            f"  {relation.process} -> ingredients={list(relation.ingredients)} "
            f"utensils={list(relation.utensils)}"
        )
    lines.append(
        f"pair-level relation extraction over {result.evaluated_steps} steps: "
        f"P={result.precision:.3f} R={result.recall:.3f} F1={result.f1:.3f}"
    )
    return "\n".join(lines)
