"""Design-choice ablations (reproduction extensions, listed in DESIGN.md §5).

Four ablations probe the design decisions the paper makes but does not
evaluate explicitly:

1. **Sampling** -- cluster-stratified vs uniform random training-set selection
   at equal budget (the paper's motivation for the clustering stage).
2. **Model family** -- linear-chain CRF vs averaged structured perceptron vs
   HMM for the ingredient NER task.
3. **Dictionary threshold** -- sweep of the technique-dictionary frequency
   threshold, showing the precision/recall trade-off of the filter.
4. **Cluster count** -- ingredient NER F1 as a function of the number of
   K-Means clusters used for training-set selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dictionary import build_dictionaries
from repro.core.ingredient_pipeline import IngredientPipeline
from repro.core.instruction_pipeline import InstructionPipeline
from repro.core.selection import TrainingSetSelector
from repro.eval.metrics import evaluate_sequences
from repro.eval.reports import format_table
from repro.experiments.common import ExperimentCorpora, build_corpora, vectorizer_for

__all__ = [
    "SamplingAblationResult",
    "ModelFamilyAblationResult",
    "ThresholdAblationResult",
    "ClusterCountAblationResult",
    "PreprocessingAblationResult",
    "run_sampling_ablation",
    "run_model_family_ablation",
    "run_threshold_ablation",
    "run_cluster_count_ablation",
    "run_preprocessing_ablation",
    "render_sampling",
    "render_model_family",
    "render_threshold",
    "render_cluster_count",
    "render_preprocessing",
]


# --------------------------------------------------------------- 1. sampling


@dataclass(frozen=True)
class SamplingAblationResult:
    """F1 of cluster-stratified vs random training-set selection."""

    stratified_f1: float
    random_f1: float
    train_size: int
    test_size: int


def run_sampling_ablation(
    *, scale: str = "small", seed: int = 0, corpora: ExperimentCorpora | None = None
) -> SamplingAblationResult:
    """Compare the two selection strategies at the same annotation budget."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    vectorizer = vectorizer_for(corpora.combined, seed=seed)
    phrases = corpora.combined.ingredient_phrases()

    selector = TrainingSetSelector(
        vectorizer, n_clusters=23, train_fraction=0.22, test_fraction=0.12, seed=seed
    )
    selection = selector.select(phrases)
    train_size = len(selection.train)
    test_size = len(selection.test)

    random_train, _ = selector.select_random(phrases, train_size=train_size, test_size=test_size)
    # Both strategies are evaluated on the stratified held-out set, which is
    # disjoint from the stratified training set by construction; the random
    # training set may overlap it slightly, which only *helps* the baseline.
    gold = [list(phrase.ner_tags) for phrase in selection.test]
    tokens = [list(phrase.tokens) for phrase in selection.test]

    stratified_model = IngredientPipeline(seed=seed).train(selection.train)
    random_model = IngredientPipeline(seed=seed).train(random_train)
    stratified_f1 = evaluate_sequences(
        [stratified_model.tag_tokens(sequence) for sequence in tokens], gold
    ).f1
    random_f1 = evaluate_sequences(
        [random_model.tag_tokens(sequence) for sequence in tokens], gold
    ).f1
    return SamplingAblationResult(
        stratified_f1=stratified_f1,
        random_f1=random_f1,
        train_size=train_size,
        test_size=test_size,
    )


def render_sampling(result: SamplingAblationResult) -> str:
    """One-table summary of the sampling ablation."""
    return format_table(
        ["Selection strategy", "Train size", "F1"],
        [
            ["cluster-stratified (paper)", result.train_size, result.stratified_f1],
            ["uniform random", result.train_size, result.random_f1],
        ],
        title=f"Ablation 1: training-set selection (test size {result.test_size})",
    )


# ---------------------------------------------------------- 2. model family


@dataclass(frozen=True)
class ModelFamilyAblationResult:
    """Ingredient NER F1 per sequence-model family."""

    f1_by_family: dict[str, float]
    train_size: int
    test_size: int


def run_model_family_ablation(
    *,
    scale: str = "small",
    seed: int = 0,
    families: tuple[str, ...] = ("crf", "perceptron", "hmm"),
    corpora: ExperimentCorpora | None = None,
) -> ModelFamilyAblationResult:
    """Train each family on the same split and compare F1."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    vectorizer = vectorizer_for(corpora.combined, seed=seed)
    selector = TrainingSetSelector(
        vectorizer, n_clusters=23, train_fraction=0.20, test_fraction=0.10, seed=seed
    )
    selection = selector.select(corpora.combined.ingredient_phrases())
    tokens = [list(phrase.tokens) for phrase in selection.test]
    gold = [list(phrase.ner_tags) for phrase in selection.test]

    f1_by_family: dict[str, float] = {}
    for family in families:
        options = {"crf_max_iterations": 60} if family == "crf" else {}
        pipeline = IngredientPipeline(model_family=family, seed=seed, **options)
        pipeline.train(selection.train)
        predictions = [pipeline.tag_tokens(sequence) for sequence in tokens]
        f1_by_family[family] = evaluate_sequences(predictions, gold).f1
    return ModelFamilyAblationResult(
        f1_by_family=f1_by_family,
        train_size=len(selection.train),
        test_size=len(selection.test),
    )


def render_model_family(result: ModelFamilyAblationResult) -> str:
    """One-table summary of the model-family ablation."""
    rows = [[family, f1] for family, f1 in sorted(result.f1_by_family.items(), key=lambda kv: -kv[1])]
    return format_table(
        ["Sequence model", "F1"],
        rows,
        title=(
            "Ablation 2: sequence-model family "
            f"({result.train_size} train / {result.test_size} test phrases)"
        ),
    )


# ------------------------------------------------------------ 3. thresholds


@dataclass(frozen=True)
class ThresholdAblationResult:
    """Effect of the technique-dictionary threshold on instruction NER."""

    rows: list[dict[str, float]] = field(default_factory=list)


def run_threshold_ablation(
    *,
    scale: str = "small",
    seed: int = 0,
    thresholds: tuple[int, ...] = (1, 2, 3, 5, 8, 13),
    corpora: ExperimentCorpora | None = None,
) -> ThresholdAblationResult:
    """Sweep the PROCESS dictionary threshold and measure P/R/F1."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    steps = corpora.combined.instruction_steps()
    ranked = sorted(steps, key=lambda step: len(step.tokens), reverse=True)
    budget = max(1, len(ranked) // 3)
    train_steps = ranked[:budget]
    test_steps = ranked[budget : budget * 2]

    pipeline = InstructionPipeline(seed=seed)
    pipeline.train(train_steps)
    token_sequences = [list(step.tokens) for step in steps]
    process_dictionary, utensil_dictionary = build_dictionaries(
        pipeline.ner, token_sequences, process_threshold=1, utensil_threshold=1
    )

    gold = [list(step.ner_tags) for step in test_steps]
    rows: list[dict[str, float]] = []
    for threshold in thresholds:
        pipeline.process_dictionary = process_dictionary.with_threshold(threshold)
        pipeline.utensil_dictionary = utensil_dictionary
        predictions = [pipeline.tag_tokens(list(step.tokens)) for step in test_steps]
        report = evaluate_sequences(predictions, gold, labels=("PROCESS",))
        rows.append(
            {
                "threshold": float(threshold),
                "dictionary_size": float(len(pipeline.process_dictionary)),
                "precision": report.precision,
                "recall": report.recall,
                "f1": report.f1,
            }
        )
    return ThresholdAblationResult(rows=rows)


def render_threshold(result: ThresholdAblationResult) -> str:
    """One-table summary of the threshold sweep."""
    rows = [
        [int(row["threshold"]), int(row["dictionary_size"]), row["precision"], row["recall"], row["f1"]]
        for row in result.rows
    ]
    return format_table(
        ["threshold", "dictionary size", "precision", "recall", "F1"],
        rows,
        title="Ablation 3: PROCESS dictionary frequency threshold (paper uses 47 on 174,932 steps)",
    )


# --------------------------------------------------------- 4. cluster count


@dataclass(frozen=True)
class ClusterCountAblationResult:
    """Ingredient NER F1 as a function of the cluster count used for selection."""

    f1_by_k: dict[int, float]
    inertia_by_k: dict[int, float]


def run_cluster_count_ablation(
    *,
    scale: str = "small",
    seed: int = 0,
    k_values: tuple[int, ...] = (2, 5, 10, 23, 30),
    corpora: ExperimentCorpora | None = None,
) -> ClusterCountAblationResult:
    """Vary k in the selection stage and measure downstream NER F1."""
    corpora = corpora or build_corpora(scale=scale, seed=seed)
    vectorizer = vectorizer_for(corpora.combined, seed=seed)
    phrases = corpora.combined.ingredient_phrases()

    f1_by_k: dict[int, float] = {}
    inertia_by_k: dict[int, float] = {}
    for k in k_values:
        selector = TrainingSetSelector(
            vectorizer, n_clusters=k, train_fraction=0.20, test_fraction=0.10, seed=seed
        )
        selection = selector.select(phrases)
        inertia_by_k[k] = selection.inertia
        pipeline = IngredientPipeline(seed=seed).train(selection.train)
        predictions = [pipeline.tag_tokens(list(phrase.tokens)) for phrase in selection.test]
        gold = [list(phrase.ner_tags) for phrase in selection.test]
        f1_by_k[k] = evaluate_sequences(predictions, gold).f1
    return ClusterCountAblationResult(f1_by_k=f1_by_k, inertia_by_k=inertia_by_k)


def render_cluster_count(result: ClusterCountAblationResult) -> str:
    """One-table summary of the cluster-count ablation."""
    rows = [
        [k, result.inertia_by_k[k], result.f1_by_k[k]]
        for k in sorted(result.f1_by_k)
    ]
    return format_table(
        ["k", "inertia", "downstream NER F1"],
        rows,
        title="Ablation 4: cluster count used for training-set selection (paper uses 23)",
        float_format="{:.3f}",
    )


# --------------------------------------------------------- 5. pre-processing


@dataclass(frozen=True)
class PreprocessingAblationResult:
    """Effect of the pre-processing stage on ingredient-name canonicalisation.

    The paper's pre-processing (lower-casing, stop-word removal, WordNet
    lemmatisation) exists so that "Tomatoes" and "tomato" collapse onto one
    ingredient; this ablation measures how many distinct ingredient names the
    full pipeline extracts from the corpus with and without that stage.

    Attributes:
        names_with_preprocessing: Unique canonical names with the stage on.
        names_without_preprocessing: Unique raw NAME strings with it off.
        compression_ratio: with / without (smaller = more folding achieved).
        recipes_processed: Number of recipes pushed through the pipeline.
    """

    names_with_preprocessing: int
    names_without_preprocessing: int
    compression_ratio: float
    recipes_processed: int


def run_preprocessing_ablation(
    *,
    scale: str = "small",
    seed: int = 0,
    max_recipes: int = 40,
    corpora: ExperimentCorpora | None = None,
) -> PreprocessingAblationResult:
    """Compare unique ingredient-name counts with and without pre-processing."""
    from repro.experiments.common import train_modeler

    corpora = corpora or build_corpora(scale=scale, seed=seed)
    modeler = train_modeler(corpora.combined, seed=seed)
    pipeline = modeler.components.ingredient_pipeline

    with_preprocessing: set[str] = set()
    without_preprocessing: set[str] = set()
    recipes = corpora.combined.recipes[:max_recipes]
    for recipe in recipes:
        for phrase in recipe.ingredients:
            tokens = list(phrase.tokens)
            tags = pipeline.tag_tokens(tokens)
            name_tokens = [token for token, tag in zip(tokens, tags) if tag == "NAME"]
            if not name_tokens:
                continue
            with_preprocessing.add(pipeline.canonical_name(name_tokens))
            without_preprocessing.add(" ".join(name_tokens))
    ratio = (
        len(with_preprocessing) / len(without_preprocessing)
        if without_preprocessing
        else 0.0
    )
    return PreprocessingAblationResult(
        names_with_preprocessing=len(with_preprocessing),
        names_without_preprocessing=len(without_preprocessing),
        compression_ratio=ratio,
        recipes_processed=len(recipes),
    )


def render_preprocessing(result: PreprocessingAblationResult) -> str:
    """One-table summary of the pre-processing ablation."""
    return format_table(
        ["Canonicalisation", "Unique ingredient names"],
        [
            ["with pre-processing (paper)", result.names_with_preprocessing],
            ["without pre-processing", result.names_without_preprocessing],
        ],
        title=(
            "Ablation 5: pre-processing of NAME spans "
            f"({result.recipes_processed} recipes; compression ratio "
            f"{result.compression_ratio:.2f})"
        ),
    )
