"""Experiment modules: one per table / figure of the paper.

Every module exposes a ``run(...)`` function returning a plain data structure
(dict / dataclass) plus a ``render(result)`` helper that prints the same rows
the paper's table reports.  The benchmark harness under ``benchmarks/`` calls
``run`` through pytest-benchmark; the CLI (``python -m repro``) calls
``run`` + ``render`` directly.

| Module | Paper artefact |
|---|---|
| :mod:`repro.experiments.table1` | Table I  -- example NER annotations |
| :mod:`repro.experiments.table3` | Table III -- training/testing set sizes |
| :mod:`repro.experiments.table4` | Table IV -- cross-corpus F1 matrix |
| :mod:`repro.experiments.table5` | Table V  -- instruction NER P/R/F1 |
| :mod:`repro.experiments.fig2`   | Fig. 2   -- POS-vector clusters + PCA views |
| :mod:`repro.experiments.fig3`   | Fig. 3   -- dependency parse of an instruction |
| :mod:`repro.experiments.fig4`   | Fig. 4   -- instruction NER inference |
| :mod:`repro.experiments.fig5`   | Fig. 5   -- many-to-many relation tuples |
| :mod:`repro.experiments.conclusions` | Conclusion statistics (relations/instruction, unique names) |
| :mod:`repro.experiments.crossval`    | Section II.F 5-fold cross-validation |
| :mod:`repro.experiments.ablations`   | Design-choice ablations (ours) |
"""

from repro.experiments.common import ExperimentCorpora, build_corpora, train_modeler

__all__ = ["ExperimentCorpora", "build_corpora", "train_modeler"]
