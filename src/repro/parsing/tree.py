"""Dependency-tree data structure.

A :class:`DependencyTree` stores, for a tokenised sentence, the head index
and dependency label of every token.  The synthetic root is index ``-1``
(:data:`ROOT_INDEX`); exactly the tokens whose head is the root are the
sentence roots (imperative recipe steps typically have one verb root per
clause).  The structure is deliberately immutable after construction and can
be exported to a :mod:`networkx` digraph for visualisation and graph
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ParsingError

__all__ = ["Arc", "DependencyTree", "ROOT_INDEX"]

#: Index used for the synthetic root node.
ROOT_INDEX = -1


@dataclass(frozen=True, slots=True)
class Arc:
    """A single dependency arc ``head -> dependent`` with its relation label."""

    head: int
    dependent: int
    label: str


@dataclass(frozen=True)
class DependencyTree:
    """A dependency parse of one sentence.

    Attributes:
        tokens: The sentence tokens.
        heads: ``heads[i]`` is the index of token *i*'s head, or
            :data:`ROOT_INDEX` when token *i* is a root.
        labels: ``labels[i]`` is the dependency relation of the arc from
            ``heads[i]`` to *i* (e.g. ``"dobj"``, ``"pobj"``, ``"nsubj"``).
        pos_tags: Optional POS tags aligned with ``tokens``.
    """

    tokens: tuple[str, ...]
    heads: tuple[int, ...]
    labels: tuple[str, ...]
    pos_tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        n = len(self.tokens)
        if len(self.heads) != n or len(self.labels) != n:
            raise ParsingError(
                "tokens, heads and labels must have equal lengths "
                f"(got {n}, {len(self.heads)}, {len(self.labels)})"
            )
        if self.pos_tags and len(self.pos_tags) != n:
            raise ParsingError("pos_tags must align with tokens")
        for index, head in enumerate(self.heads):
            if head == index:
                raise ParsingError(f"token {index} cannot be its own head")
            if head != ROOT_INDEX and not (0 <= head < n):
                raise ParsingError(f"head index {head} of token {index} out of range")
        self._check_acyclic()

    @classmethod
    def build(
        cls,
        tokens: list[str],
        heads: list[int],
        labels: list[str],
        pos_tags: list[str] | None = None,
    ) -> "DependencyTree":
        """Convenience constructor from plain lists."""
        return cls(
            tokens=tuple(tokens),
            heads=tuple(heads),
            labels=tuple(labels),
            pos_tags=tuple(pos_tags) if pos_tags else (),
        )

    def __len__(self) -> int:
        return len(self.tokens)

    def _check_acyclic(self) -> None:
        for start in range(len(self.tokens)):
            seen = set()
            node = start
            while node != ROOT_INDEX:
                if node in seen:
                    raise ParsingError(f"dependency cycle detected involving token {start}")
                seen.add(node)
                node = self.heads[node]

    # ----------------------------------------------------------- navigation

    def roots(self) -> list[int]:
        """Indices of tokens attached directly to the synthetic root."""
        return [index for index, head in enumerate(self.heads) if head == ROOT_INDEX]

    def children(self, index: int, label: str | None = None) -> list[int]:
        """Indices of the direct dependents of token ``index``.

        Args:
            index: Head token index (or :data:`ROOT_INDEX`).
            label: If given, only dependents attached with this relation.
        """
        return [
            child
            for child, head in enumerate(self.heads)
            if head == index and (label is None or self.labels[child] == label)
        ]

    def arcs(self) -> list[Arc]:
        """All arcs of the tree (root arcs included)."""
        return [
            Arc(head=head, dependent=index, label=self.labels[index])
            for index, head in enumerate(self.heads)
        ]

    def subtree(self, index: int) -> list[int]:
        """Indices of the subtree rooted at ``index`` (inclusive), sorted."""
        collected: list[int] = []
        stack = [index]
        while stack:
            node = stack.pop()
            collected.append(node)
            stack.extend(self.children(node))
        return sorted(collected)

    def label_of(self, index: int) -> str:
        """Dependency label of the arc entering token ``index``."""
        return self.labels[index]

    def head_of(self, index: int) -> int:
        """Head index of token ``index``."""
        return self.heads[index]

    def token(self, index: int) -> str:
        """Token text at ``index``."""
        return self.tokens[index]

    def pos_of(self, index: int) -> str | None:
        """POS tag at ``index`` when available."""
        if not self.pos_tags:
            return None
        return self.pos_tags[index]

    # --------------------------------------------------------------- export

    def to_networkx(self) -> nx.DiGraph:
        """Export as a directed graph with a ``"ROOT"`` node."""
        graph = nx.DiGraph()
        graph.add_node("ROOT")
        for index, token in enumerate(self.tokens):
            graph.add_node(index, text=token, pos=self.pos_of(index))
        for arc in self.arcs():
            source = "ROOT" if arc.head == ROOT_INDEX else arc.head
            graph.add_edge(source, arc.dependent, label=arc.label)
        return graph

    def to_conll(self) -> str:
        """Render the tree in a CoNLL-like tab-separated format."""
        lines = []
        for index, token in enumerate(self.tokens):
            head = self.heads[index]
            head_display = 0 if head == ROOT_INDEX else head + 1
            pos = self.pos_of(index) or "_"
            lines.append(f"{index + 1}\t{token}\t{pos}\t{head_display}\t{self.labels[index]}")
        return "\n".join(lines)

    def pretty(self) -> str:
        """Human-readable arc listing, used by the Fig. 3 experiment."""
        parts = []
        for arc in self.arcs():
            head_text = "ROOT" if arc.head == ROOT_INDEX else self.tokens[arc.head]
            parts.append(f"{head_text} --{arc.label}--> {self.tokens[arc.dependent]}")
        return "\n".join(parts)
