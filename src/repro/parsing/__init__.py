"""Dependency-parsing substrate (the stand-in for spaCy in the paper).

The relation-extraction stage (Section III.B) needs, for every instruction
step, the verbs and their subject / object / prepositional-object
attachments.  Two parsers are provided:

* :class:`repro.parsing.rules.RecipeDependencyParser` -- a deterministic
  rule-based parser specialised for imperative recipe clauses; this is the
  parser the core pipeline uses.
* :class:`repro.parsing.transition.TransitionDependencyParser` -- a trainable
  greedy arc-standard parser (averaged perceptron) demonstrating the general
  mechanism and used in the parser ablation.
"""

from repro.parsing.tree import Arc, DependencyTree, ROOT_INDEX
from repro.parsing.rules import RecipeDependencyParser
from repro.parsing.oracle import arc_standard_oracle
from repro.parsing.transition import TransitionDependencyParser

__all__ = [
    "Arc",
    "DependencyTree",
    "ROOT_INDEX",
    "RecipeDependencyParser",
    "TransitionDependencyParser",
    "arc_standard_oracle",
]
