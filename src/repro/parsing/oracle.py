"""Arc-standard oracle: derive the transition sequence that builds a gold tree.

The trainable transition parser learns to imitate this oracle.  The oracle
implements the classic static arc-standard rules:

* ``LEFT-ARC``  -- the stack's second-from-top is a dependent of the top and
  all of its own dependents have already been attached;
* ``RIGHT-ARC`` -- the stack's top is a dependent of the second-from-top and
  all of its dependents have been attached;
* ``SHIFT``     -- otherwise, move the next buffer token onto the stack.
"""

from __future__ import annotations

from repro.errors import ParsingError
from repro.parsing.tree import DependencyTree, ROOT_INDEX

__all__ = ["arc_standard_oracle", "SHIFT", "LEFT_ARC", "RIGHT_ARC"]

SHIFT = "SHIFT"
LEFT_ARC = "LEFT"
RIGHT_ARC = "RIGHT"


def arc_standard_oracle(tree: DependencyTree) -> list[tuple[str, str | None]]:
    """Transition sequence (action, label) reproducing ``tree``.

    The sentence is processed with a virtual root appended at the far end of
    the stack bottom (standard formulation where the root lives on the stack
    as index ``ROOT_INDEX``).

    Raises:
        ParsingError: If the tree is not projective (cannot be built by
            arc-standard transitions); recipe clauses produced by the rule
            parser and the corpus generator are always projective.
    """
    n = len(tree)
    heads = tree.heads
    # Number of dependents each token still needs attached.
    pending_children = [0] * (n + 1)  # last slot is for the root
    for head in heads:
        index = n if head == ROOT_INDEX else head
        pending_children[index] += 1

    stack: list[int] = [ROOT_INDEX]
    buffer: list[int] = list(range(n))
    transitions: list[tuple[str, str | None]] = []
    attached = 0

    def _head_slot(index: int) -> int:
        return n if heads[index] == ROOT_INDEX else heads[index]

    while buffer or len(stack) > 1:
        progressed = False
        if len(stack) >= 2:
            top = stack[-1]
            below = stack[-2]
            # LEFT-ARC: below <- top (below's head is top), below has no pending children.
            if below != ROOT_INDEX and heads[below] == top and pending_children[below] == 0:
                transitions.append((LEFT_ARC, tree.labels[below]))
                stack.pop(-2)
                pending_children[top if top != ROOT_INDEX else n] -= 1
                attached += 1
                progressed = True
            # RIGHT-ARC: top's head is below, top has no pending children.
            elif top != ROOT_INDEX and _head_slot(top) == (n if below == ROOT_INDEX else below) and pending_children[top] == 0:
                transitions.append((RIGHT_ARC, tree.labels[top]))
                stack.pop()
                pending_children[n if below == ROOT_INDEX else below] -= 1
                attached += 1
                progressed = True
        if not progressed:
            if not buffer:
                raise ParsingError("tree is not reachable by arc-standard transitions (non-projective)")
            transitions.append((SHIFT, None))
            stack.append(buffer.pop(0))

    if attached != n:
        raise ParsingError("oracle terminated before attaching every token")
    return transitions
