"""Rule-based dependency parser for imperative recipe instructions.

Recipe instruction steps are overwhelmingly imperative clauses of the form

    VERB (particle)? OBJECT* (PREP OBJECT*)* (, VERB ...)*

e.g. *"Bring the water to a boil in a large pot"* or *"fry the potatoes with
olive oil in a pan"*.  The relation extractor (Section III.B of the paper)
only needs the arcs a general-purpose parser would label ``dobj``, ``pobj``,
``prep``, ``conj``, ``nsubj`` and ``ROOT``; this parser produces exactly
those arcs with deterministic rules driven by POS tags:

1. every verb opens a clause and attaches to the root (first verb) or to the
   previous verb with ``conj``;
2. nouns before any preposition attach to the active verb as ``dobj`` (or
   ``nsubj`` when they precede the first verb);
3. a preposition attaches to the active verb as ``prep`` and the following
   noun(s) attach to the preposition as ``pobj``;
4. determiners, adjectives and adverbs attach to the next noun/verb
   (``det`` / ``amod`` / ``advmod``);
5. conjunctions between nouns chain them with ``conj`` so that *"salt and
   pepper"* yields two objects of the same verb.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ParsingError
from repro.parsing.tree import DependencyTree, ROOT_INDEX
from repro.pos.tagset import is_adjective_tag, is_noun_tag, is_verb_tag

__all__ = ["RecipeDependencyParser"]

_PREPOSITION_TAGS = {"IN", "TO", "RP"}
_DETERMINER_TAGS = {"DT", "PDT", "PRP$"}
_ADVERB_TAGS = {"RB", "RBR", "RBS"}
_PUNCT_TAGS = {",", ".", ":", "(", ")"}


class RecipeDependencyParser:
    """Deterministic dependency parser for imperative recipe clauses.

    The parser consumes tokens *with* POS tags (from
    :class:`~repro.pos.tagger.PerceptronPosTagger` or gold tags) and emits a
    :class:`~repro.parsing.tree.DependencyTree`.
    """

    def parse(self, tokens: Sequence[str], pos_tags: Sequence[str]) -> DependencyTree:
        """Parse one instruction clause.

        Args:
            tokens: Sentence tokens.
            pos_tags: POS tags aligned with ``tokens``.

        Raises:
            ParsingError: On misaligned input; an empty sentence raises too.
        """
        if len(tokens) == 0:
            raise ParsingError("cannot parse an empty sentence")
        if len(tokens) != len(pos_tags):
            raise ParsingError(
                f"tokens and pos_tags must align (got {len(tokens)} and {len(pos_tags)})"
            )
        n = len(tokens)
        heads = [ROOT_INDEX] * n
        labels = ["dep"] * n

        lowered = [token.lower() for token in tokens]
        first_verb = self._find_first_verb(lowered, pos_tags)
        active_verb = first_verb if first_verb is not None else ROOT_INDEX
        active_prep: int | None = None
        last_object: int | None = None
        previous_verb: int | None = None

        for index in range(n):
            tag = pos_tags[index]
            token = lowered[index]

            if index == first_verb:
                heads[index] = ROOT_INDEX
                labels[index] = "ROOT"
                previous_verb = index
                active_verb = index
                active_prep = None
                last_object = None
                continue

            if is_verb_tag(tag) or (tag == "VB" ):
                # Subsequent verbs start coordinated clauses.
                if previous_verb is not None:
                    heads[index] = previous_verb
                    labels[index] = "conj"
                else:
                    heads[index] = ROOT_INDEX
                    labels[index] = "ROOT"
                previous_verb = index
                active_verb = index
                active_prep = None
                last_object = None
                continue

            if tag in _PREPOSITION_TAGS and token != "to" or tag == "TO":
                heads[index] = active_verb if active_verb != ROOT_INDEX else index - 1 if index else ROOT_INDEX
                labels[index] = "prep"
                active_prep = index
                last_object = None
                continue

            if tag in _DETERMINER_TAGS:
                heads[index] = self._attach_forward(index, pos_tags, fallback=active_verb)
                labels[index] = "det"
                continue

            if is_adjective_tag(tag) or tag == "VBN" or tag == "VBG":
                heads[index] = self._attach_forward(index, pos_tags, fallback=active_verb)
                labels[index] = "amod"
                continue

            if tag in _ADVERB_TAGS:
                target = active_verb if active_verb != ROOT_INDEX else self._attach_forward(index, pos_tags, fallback=ROOT_INDEX)
                heads[index] = target
                labels[index] = "advmod"
                continue

            if tag == "CD":
                heads[index] = self._attach_forward(index, pos_tags, fallback=active_verb)
                labels[index] = "nummod"
                continue

            if tag == "CC":
                heads[index] = last_object if last_object is not None else active_verb
                labels[index] = "cc"
                continue

            if tag in _PUNCT_TAGS:
                heads[index] = active_verb if active_verb != ROOT_INDEX else (first_verb if first_verb is not None else 0 if index else ROOT_INDEX)
                if heads[index] == index:
                    heads[index] = ROOT_INDEX
                labels[index] = "punct"
                continue

            if is_noun_tag(tag) or tag in {"PRP", "FW"}:
                head, label = self._attach_noun(
                    index,
                    lowered,
                    pos_tags,
                    active_verb=active_verb,
                    active_prep=active_prep,
                    last_object=last_object,
                    first_verb=first_verb,
                )
                heads[index] = head
                labels[index] = label
                if label in {"dobj", "pobj", "nsubj", "conj"}:
                    last_object = index
                continue

            # Anything else hangs off the active verb as a generic dependent.
            heads[index] = active_verb if active_verb not in (ROOT_INDEX, index) else ROOT_INDEX
            labels[index] = "dep"

        self._break_self_loops(heads, labels)
        try:
            return DependencyTree.build(list(tokens), heads, labels, list(pos_tags))
        except ParsingError:
            # Extremely irregular input (e.g. fuzzed token soup) can defeat the
            # attachment rules; fall back to a flat tree rooted at the first
            # verb (or the first token) so the pipeline never crashes.
            return self._flat_tree(list(tokens), list(pos_tags), first_verb)

    @staticmethod
    def _flat_tree(tokens: list[str], pos_tags: list[str], first_verb: int | None) -> DependencyTree:
        root = first_verb if first_verb is not None else 0
        heads = [root] * len(tokens)
        labels = ["dep"] * len(tokens)
        heads[root] = ROOT_INDEX
        labels[root] = "ROOT"
        return DependencyTree.build(tokens, heads, labels, pos_tags)

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _find_first_verb(lowered: Sequence[str], pos_tags: Sequence[str]) -> int | None:
        for index, tag in enumerate(pos_tags):
            if is_verb_tag(tag):
                return index
        # Imperative steps sometimes get their initial verb mis-tagged as a
        # noun ("Heat the oil"); treat a sentence-initial non-determiner word
        # followed by a determiner/noun as the verb.
        if len(lowered) >= 2 and pos_tags[0] in {"NN", "NNP"} and pos_tags[1] in {"DT", "NN", "NNS", "JJ", "CD"}:
            return 0
        return None

    @staticmethod
    def _attach_forward(index: int, pos_tags: Sequence[str], *, fallback: int) -> int:
        """Attach modifiers to the next noun (or verb) to their right.

        The scan stops at a sentence-final period so that a clause-final
        modifier ("until golden brown .") never attaches across the clause
        boundary, which would make the tree non-projective.
        """
        for candidate in range(index + 1, len(pos_tags)):
            if pos_tags[candidate] == ".":
                break
            if is_noun_tag(pos_tags[candidate]) or pos_tags[candidate] in {"PRP", "FW"}:
                return candidate
            if is_verb_tag(pos_tags[candidate]):
                return candidate
        if fallback != ROOT_INDEX and fallback != index:
            return fallback
        return ROOT_INDEX

    @staticmethod
    def _attach_noun(
        index: int,
        lowered: Sequence[str],
        pos_tags: Sequence[str],
        *,
        active_verb: int,
        active_prep: int | None,
        last_object: int | None,
        first_verb: int | None,
    ) -> tuple[int, str]:
        # Compound nouns: a noun immediately followed by another noun is a
        # compound modifier of the following noun ("olive oil", "baking sheet").
        if index + 1 < len(pos_tags) and is_noun_tag(pos_tags[index + 1]):
            return index + 1, "compound"
        # Coordination: noun preceded by a CC whose left neighbour was an object.
        if index >= 2 and pos_tags[index - 1] == "CC" and last_object is not None:
            return last_object, "conj"
        if active_prep is not None:
            return active_prep, "pobj"
        if first_verb is not None and index < first_verb:
            return first_verb, "nsubj"
        if active_verb != ROOT_INDEX:
            return active_verb, "dobj"
        return ROOT_INDEX, "ROOT"

    @staticmethod
    def _break_self_loops(heads: list[int], labels: list[str]) -> None:
        for index, head in enumerate(heads):
            if head == index:
                heads[index] = ROOT_INDEX
                labels[index] = "ROOT"
