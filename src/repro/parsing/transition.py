"""Greedy arc-standard transition dependency parser (averaged perceptron).

This parser demonstrates the general, trainable mechanism behind spaCy-style
parsing: a classifier chooses SHIFT / LEFT-ARC / RIGHT-ARC actions from
features of the current stack/buffer configuration.  It is trained by
imitation of :func:`repro.parsing.oracle.arc_standard_oracle` on trees
produced either by the rule parser or by the corpus generator's gold
instruction templates.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import NotFittedError, ParsingError
from repro.parsing.oracle import LEFT_ARC, RIGHT_ARC, SHIFT, arc_standard_oracle
from repro.parsing.tree import DependencyTree, ROOT_INDEX
from repro.pos.perceptron import AveragedPerceptron
from repro.utils import make_py_rng

__all__ = ["TransitionDependencyParser"]

_ROOT_TOKEN = "<root>"
_EMPTY = "<none>"


class _Configuration:
    """Mutable parser state: stack, buffer and the partially built arcs."""

    __slots__ = ("stack", "buffer", "heads", "labels")

    def __init__(self, n: int) -> None:
        self.stack: list[int] = [ROOT_INDEX]
        self.buffer: list[int] = list(range(n))
        self.heads: list[int] = [ROOT_INDEX] * n
        self.labels: list[str] = ["dep"] * n

    def terminal(self) -> bool:
        return not self.buffer and len(self.stack) == 1


class TransitionDependencyParser:
    """Greedy arc-standard parser trained by oracle imitation.

    Args:
        iterations: Training epochs over the tree bank.
        seed: Shuffle seed for the training order.
    """

    def __init__(self, *, iterations: int = 5, seed: int | None = None) -> None:
        self.iterations = int(iterations)
        self.seed = seed
        self.model = AveragedPerceptron()
        self._trained = False

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has completed."""
        return self._trained

    def train(self, trees: Sequence[DependencyTree]) -> "TransitionDependencyParser":
        """Train on gold dependency trees (non-projective trees are skipped)."""
        examples: list[tuple[list[str], list[str], list[tuple[str, str | None]]]] = []
        for tree in trees:
            try:
                transitions = arc_standard_oracle(tree)
            except ParsingError:
                continue
            tokens = list(tree.tokens)
            pos_tags = list(tree.pos_tags) if tree.pos_tags else ["NN"] * len(tokens)
            examples.append((tokens, pos_tags, transitions))
        if not examples:
            raise ParsingError("no projective trees available for training")

        rng = make_py_rng(self.seed)
        for _ in range(self.iterations):
            rng.shuffle(examples)
            for tokens, pos_tags, transitions in examples:
                config = _Configuration(len(tokens))
                for action, label in transitions:
                    features = self._features(config, tokens, pos_tags)
                    gold = self._encode_action(action, label)
                    guess = self.model.predict(features) if self.model.classes else gold
                    self.model.update(gold, guess, features)
                    self._apply(config, action, label)
        self.model.average_weights()
        self._trained = True
        return self

    def parse(self, tokens: Sequence[str], pos_tags: Sequence[str]) -> DependencyTree:
        """Parse a sentence greedily with the learnt action classifier."""
        if not self._trained:
            raise NotFittedError("TransitionDependencyParser.parse called before train()")
        if len(tokens) == 0:
            raise ParsingError("cannot parse an empty sentence")
        if len(tokens) != len(pos_tags):
            raise ParsingError("tokens and pos_tags must align")
        config = _Configuration(len(tokens))
        guard = 0
        max_steps = 4 * len(tokens) + 8
        while not config.terminal() and guard < max_steps:
            guard += 1
            features = self._features(config, list(tokens), list(pos_tags))
            scores = self.model.score(features)
            for encoded in sorted(scores, key=lambda a: (-scores[a], a)):
                action, label = self._decode_action(encoded)
                if self._is_legal(config, action):
                    self._apply(config, action, label)
                    break
            else:  # no legal action scored: force a SHIFT or RIGHT-ARC
                if config.buffer:
                    self._apply(config, SHIFT, None)
                else:
                    self._apply(config, RIGHT_ARC, "dep")
        return DependencyTree.build(list(tokens), config.heads, config.labels, list(pos_tags))

    # ------------------------------------------------------------- actions

    @staticmethod
    def _encode_action(action: str, label: str | None) -> str:
        return action if label is None else f"{action}:{label}"

    @staticmethod
    def _decode_action(encoded: str) -> tuple[str, str | None]:
        if ":" in encoded:
            action, label = encoded.split(":", 1)
            return action, label
        return encoded, None

    @staticmethod
    def _is_legal(config: _Configuration, action: str) -> bool:
        if action == SHIFT:
            return bool(config.buffer)
        if action == LEFT_ARC:
            return len(config.stack) >= 2 and config.stack[-2] != ROOT_INDEX
        if action == RIGHT_ARC:
            return len(config.stack) >= 2 and config.stack[-1] != ROOT_INDEX
        return False

    @staticmethod
    def _apply(config: _Configuration, action: str, label: str | None) -> None:
        if action == SHIFT:
            config.stack.append(config.buffer.pop(0))
            return
        if action == LEFT_ARC:
            dependent = config.stack.pop(-2)
            head = config.stack[-1]
            config.heads[dependent] = head
            config.labels[dependent] = label or "dep"
            return
        if action == RIGHT_ARC:
            dependent = config.stack.pop()
            head = config.stack[-1]
            config.heads[dependent] = head
            config.labels[dependent] = label or "dep"
            return
        raise ParsingError(f"unknown transition action: {action!r}")

    # ------------------------------------------------------------ features

    @staticmethod
    def _features(config: _Configuration, tokens: list[str], pos_tags: list[str]) -> list[str]:
        def word(index: int | None) -> str:
            if index is None:
                return _EMPTY
            if index == ROOT_INDEX:
                return _ROOT_TOKEN
            return tokens[index].lower()

        def pos(index: int | None) -> str:
            if index is None:
                return _EMPTY
            if index == ROOT_INDEX:
                return _ROOT_TOKEN
            return pos_tags[index]

        s0 = config.stack[-1] if config.stack else None
        s1 = config.stack[-2] if len(config.stack) >= 2 else None
        b0 = config.buffer[0] if config.buffer else None
        b1 = config.buffer[1] if len(config.buffer) >= 2 else None
        return [
            "bias",
            f"s0w={word(s0)}",
            f"s0p={pos(s0)}",
            f"s1w={word(s1)}",
            f"s1p={pos(s1)}",
            f"b0w={word(b0)}",
            f"b0p={pos(b0)}",
            f"b1p={pos(b1)}",
            f"s0p|s1p={pos(s0)}|{pos(s1)}",
            f"s0p|b0p={pos(s0)}|{pos(b0)}",
            f"s1p|b0p={pos(s1)}|{pos(b0)}",
            f"s0w|s1p={word(s0)}|{pos(s1)}",
            f"s1w|s0p={word(s1)}|{pos(s0)}",
            f"stack_size={min(len(config.stack), 4)}",
            f"buffer_size={min(len(config.buffer), 4)}",
        ]
