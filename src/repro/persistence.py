"""Persistence of trained components.

Training the full pipeline is cheap on the simulated corpus but a real
deployment (the paper applies its models to 118k recipes) trains once and
tags forever, so every learned component can be serialised to plain JSON:

* the sequence labellers (:class:`StructuredPerceptron`,
  :class:`LinearChainCRF`, :class:`HiddenMarkovModel`),
* the POS tagger,
* the high-level :class:`~repro.ner.model.NerModel` facade,
* the frequency dictionaries,
* and a :class:`PipelineBundle` that packages everything a fitted
  :class:`~repro.core.pipeline.RecipeModeler` needs to tag new recipes
  (POS tagger, both NER models, both dictionaries), with
  :meth:`PipelineBundle.save` / :meth:`PipelineBundle.load` and a
  :meth:`PipelineBundle.model_text` convenience mirroring the modeler's API.

JSON was chosen over pickle on purpose: the files are inspectable,
diff-able, and loading them never executes arbitrary code.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from contextlib import suppress
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.dictionary import EntityDictionary
from repro.core.ingredient_pipeline import IngredientPipeline
from repro.core.instruction_pipeline import InstructionPipeline
from repro.core.pipeline import RecipeModeler
from repro.core.recipe_model import StructuredRecipe
from repro.core.relation_extraction import RelationExtractor
from repro.errors import ConfigurationError, DataError, NotFittedError, PersistenceError
from repro.ner.crf import LinearChainCRF
from repro.ner.features import IngredientFeatureExtractor, InstructionFeatureExtractor
from repro.ner.hmm import HiddenMarkovModel
from repro.ner.model import NerModel
from repro.ner.structured_perceptron import StructuredPerceptron
from repro.pos.perceptron import AveragedPerceptron
from repro.pos.tagger import PerceptronPosTagger
from repro.text.vocab import Vocabulary

__all__ = [
    "ARTIFACT_FORMAT",
    "FORMAT_VERSION",
    "PipelineBundle",
    "check_payload_version",
    "dictionary_from_payload",
    "dictionary_to_payload",
    "file_sha256",
    "load_ner_model",
    "load_pos_tagger",
    "load_sequence_model",
    "ner_model_to_payload",
    "open_artifact_buffer",
    "parse_artifact",
    "parse_binary_artifact",
    "payload_checksum",
    "pos_tagger_to_payload",
    "sequence_model_to_payload",
    "write_artifact",
    "write_json_atomic",
]

_FORMAT_VERSION = 1

#: Current on-disk payload format version (gate checked on every load).
FORMAT_VERSION = _FORMAT_VERSION

#: ``format`` marker of the checksummed artifact envelope written by
#: :meth:`PipelineBundle.save`.
ARTIFACT_FORMAT = "repro-pipeline-bundle"

_FEATURE_EXTRACTORS = {
    "ingredient": IngredientFeatureExtractor,
    "instruction": InstructionFeatureExtractor,
}

_SEQUENCE_MODEL_KINDS = ("perceptron", "crf", "hmm")


def check_payload_version(payload: dict, what: str) -> None:
    """Gate a payload on its ``version`` field (no silent defaulting)."""
    version = payload.get("version")
    if version is None:
        raise PersistenceError(
            f"{what} payload is missing its 'version' field; refusing to guess the format"
        )
    if version != _FORMAT_VERSION:
        raise PersistenceError(
            f"{what} payload has format version {version!r} but this build reads "
            f"version {_FORMAT_VERSION}; re-export the artifact with a matching build"
        )


_check_version = check_payload_version


def payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical (sorted-key, compact) JSON form of ``payload``.

    The canonical serialisation is *streamed* into the hash chunk by chunk
    (``JSONEncoder.iterencode``) rather than materialised as one string, so
    checksumming a multi-megabyte payload no longer doubles peak memory —
    the hash is identical to the one over ``json.dumps`` of the same payload.
    """
    digest = hashlib.sha256()
    encoder = json.JSONEncoder(sort_keys=True, separators=(",", ":"))
    for chunk in encoder.iterencode(payload):
        digest.update(chunk.encode("utf-8"))
    return digest.hexdigest()


def file_sha256(path: str | Path) -> str:
    """SHA-256 over a file's exact bytes.

    This is the *file* fingerprint (not the payload checksum inside the
    envelope): the serving registry uses it for swap-only-on-change reloads
    and shard manifests record it per shard so a manifest can never be paired
    with a shard artifact it was not written against.
    """
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def write_json_atomic(path: str | Path, document: dict) -> None:
    """Write ``document`` as JSON via a same-directory temp file + ``os.replace``.

    The temp file is flushed and fsynced before the rename, so a crash at any
    point leaves either the previous artifact or the complete new one on disk,
    never a truncated mix.  Concurrent writers each rename their own temp file;
    the last rename wins atomically.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        with suppress(OSError):
            os.unlink(temp_name)
        raise


def write_artifact(
    path: str | Path, payload: dict, *, format: str, binary: bytes | None = None
) -> None:
    """Atomically write ``payload`` inside the checksummed artifact envelope.

    The envelope is ``{format, version, sha256, payload}`` — the same shape
    :meth:`PipelineBundle.save` writes — so every artifact kind (bundles,
    indexes, ...) shares one hardened on-disk format.

    With ``binary``, the artifact gains a raw byte section after the JSON
    envelope: the file is ``<envelope JSON>\\n<binary bytes>`` and the
    envelope additionally records ``{"binary": {"length", "sha256"}}`` — the
    SHA-256 over the section's *exact bytes*, so a loader verifies it by
    hashing the raw file tail (an mmap slice) with no decode of any kind.
    The JSON envelope itself never contains a raw newline (``json`` escapes
    them), so the first ``\\n`` in the file is always the section boundary.
    """
    envelope: dict = {
        "format": format,
        "version": _FORMAT_VERSION,
        "sha256": payload_checksum(payload),
    }
    if binary is None:
        envelope["payload"] = payload
        write_json_atomic(path, envelope)
        return
    envelope["binary"] = {
        "length": len(binary),
        "sha256": hashlib.sha256(binary).hexdigest(),
    }
    envelope["payload"] = payload
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(json.dumps(envelope).encode("utf-8"))
            handle.write(b"\n")
            handle.write(binary)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        with suppress(OSError):
            os.unlink(temp_name)
        raise


def open_artifact_buffer(path: str | Path):
    """A zero-copy read-only buffer over an artifact file.

    Returns an ``mmap`` of the file (or ``b""`` for an empty file, which
    cannot be mapped).  The mapping stays valid after the file object is
    closed and after the path is atomically replaced on disk (the old inode
    lives until unmapped), which is exactly the immutable-artifact lifecycle
    every writer here follows.  Callers keep the buffer alive for as long as
    they hold views into it (lazy v2 indexes do so by reference).
    """
    with open(path, "rb") as handle:
        if os.fstat(handle.fileno()).st_size == 0:
            return b""
        return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)


def parse_binary_artifact(
    buffer,
    *,
    format: str,
    source: str = "<artifact>",
    what: str = "artifact",
):
    """Validate a binary-section artifact; return ``(payload, binary_view)``.

    ``buffer`` is any bytes-like object (``bytes`` or an ``mmap`` from
    :func:`open_artifact_buffer`).  Only the JSON envelope before the first
    newline is parsed; the binary section is verified by streaming SHA-256
    over its **raw bytes** through a zero-copy ``memoryview`` — no JSON
    parse, no decode, no copy — and returned as that view, so the caller
    can decode slices of it lazily.  Checks mirror :func:`parse_artifact`:
    format marker, version gate, payload checksum, then the binary
    section's recorded length and checksum.
    """
    boundary = buffer.find(b"\n")
    if boundary < 0:
        raise PersistenceError(
            f"{what} {source} has no binary section boundary; the file is "
            "truncated or not a binary artifact"
        )
    view = memoryview(buffer)
    try:
        document = json.loads(bytes(view[:boundary]))
    except json.JSONDecodeError as error:
        raise PersistenceError(
            f"{what} {source} envelope is not valid JSON (truncated or corrupt): {error}"
        ) from error
    if not isinstance(document, dict):
        raise PersistenceError(
            f"{what} {source} must hold a JSON object, got {type(document).__name__}"
        )
    if document.get("format") != format:
        raise PersistenceError(
            f"{what} {source} has format marker {document.get('format')!r}; "
            f"expected {format!r}"
        )
    check_payload_version(document, f"{what} {source}")
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise PersistenceError(f"{what} {source} envelope has no payload object")
    expected = document.get("sha256")
    actual = payload_checksum(payload)
    if expected != actual:
        raise PersistenceError(
            f"{what} {source} failed its checksum "
            f"(recorded {expected!r}, recomputed {actual!r}); the file is corrupt"
        )
    binary_info = document.get("binary")
    if not isinstance(binary_info, dict):
        raise PersistenceError(
            f"{what} {source} envelope has no binary section descriptor"
        )
    binary_view = view[boundary + 1 :]
    recorded_length = binary_info.get("length")
    if len(binary_view) != recorded_length:
        raise PersistenceError(
            f"{what} {source} binary section is {len(binary_view)} bytes but "
            f"the envelope records {recorded_length}; the file is truncated "
            "or corrupt"
        )
    recorded_sha = binary_info.get("sha256")
    actual_sha = hashlib.sha256(binary_view).hexdigest()
    if actual_sha != recorded_sha:
        raise PersistenceError(
            f"{what} {source} binary section failed its checksum "
            f"(recorded {recorded_sha!r}, recomputed {actual_sha!r}); "
            "the file is corrupt"
        )
    return payload, binary_view


def parse_artifact(
    text: str,
    *,
    format: str,
    source: str = "<artifact>",
    what: str = "artifact",
    allow_bare: bool = False,
    document: dict | None = None,
) -> dict:
    """Validate an artifact envelope and return its payload.

    Checks, in order: the text parses as a JSON object, the envelope's
    ``format`` marker matches ``format``, its ``version`` is readable by this
    build, and the recorded SHA-256 matches the recomputed payload checksum.
    ``allow_bare`` accepts a document without the envelope marker as a legacy
    bare payload (the caller still version-gates it).  ``what`` and ``source``
    only label error messages.  A caller that already parsed ``text`` (e.g.
    to dispatch on the format marker) passes the parse as ``document`` so
    large artifacts are never json-parsed twice.
    """
    if document is None:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise PersistenceError(
                f"{what} {source} is not valid JSON (truncated or corrupt): {error}"
            ) from error
    if not isinstance(document, dict):
        raise PersistenceError(
            f"{what} {source} must hold a JSON object, got {type(document).__name__}"
        )
    if document.get("format") != format:
        if allow_bare:
            return document
        raise PersistenceError(
            f"{what} {source} has format marker {document.get('format')!r}; "
            f"expected {format!r}"
        )
    check_payload_version(document, f"{what} {source}")
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise PersistenceError(f"{what} {source} envelope has no payload object")
    expected = document.get("sha256")
    actual = payload_checksum(payload)
    if expected != actual:
        raise PersistenceError(
            f"{what} {source} failed its checksum "
            f"(recorded {expected!r}, recomputed {actual!r}); the file is corrupt"
        )
    return payload


# ------------------------------------------------------------ sequence models


def sequence_model_to_payload(model) -> dict:
    """Serialise a fitted sequence labeller to a JSON-compatible payload."""
    if isinstance(model, StructuredPerceptron):
        _require(model.is_trained, "StructuredPerceptron")
        return {
            "kind": "perceptron",
            "version": _FORMAT_VERSION,
            "features": model.feature_vocab.symbols(),
            "labels": model.label_vocab.symbols(),
            "emission": model.emission_weights.tolist(),
            "transition": model.transition_weights.tolist(),
            "start": model.start_weights.tolist(),
            "end": model.end_weights.tolist(),
        }
    if isinstance(model, LinearChainCRF):
        _require(model.is_trained, "LinearChainCRF")
        return {
            "kind": "crf",
            "version": _FORMAT_VERSION,
            "l2": model.l2,
            "features": model.feature_vocab.symbols(),
            "labels": model.label_vocab.symbols(),
            "emission": model.emission_weights.tolist(),
            "transition": model.transition_weights.tolist(),
            "start": model.start_weights.tolist(),
            "end": model.end_weights.tolist(),
        }
    if isinstance(model, HiddenMarkovModel):
        _require(model.is_trained, "HiddenMarkovModel")
        return {
            "kind": "hmm",
            "version": _FORMAT_VERSION,
            "smoothing": model.smoothing,
            "labels": model.labels(),
            "vocabulary": sorted(model._vocabulary),
            "start": dict(model._start_log_prob),
            "transition": {
                f"{left} {right}": value
                for (left, right), value in model._transition_log_prob.items()
            },
            "emission": {
                f"{label} {observation}": value
                for (label, observation), value in model._emission_log_prob.items()
            },
            "emission_unknown": dict(model._emission_unknown_log_prob),
        }
    raise ConfigurationError(f"cannot serialise sequence model of type {type(model).__name__}")


def load_sequence_model(payload: dict):
    """Rebuild a sequence labeller from :func:`sequence_model_to_payload` output.

    The payload's ``kind`` and ``version`` fields are both validated before
    any weights are touched; unknown values raise a descriptive
    :class:`~repro.errors.ReproError` instead of silently defaulting.
    """
    kind = payload.get("kind")
    if kind not in _SEQUENCE_MODEL_KINDS:
        raise ConfigurationError(
            f"unknown sequence-model kind: {kind!r}; expected one of {_SEQUENCE_MODEL_KINDS}"
        )
    _check_version(payload, f"sequence model ({kind})")
    if kind == "perceptron":
        model = StructuredPerceptron()
    elif kind == "crf":
        model = LinearChainCRF(l2=payload.get("l2", 1.0))
    else:
        return _load_hmm(payload)
    model.feature_vocab = Vocabulary(payload["features"]).freeze()
    model.label_vocab = Vocabulary(payload["labels"]).freeze()
    model.emission_weights = np.asarray(payload["emission"], dtype=np.float64)
    model.transition_weights = np.asarray(payload["transition"], dtype=np.float64)
    model.start_weights = np.asarray(payload["start"], dtype=np.float64)
    model.end_weights = np.asarray(payload["end"], dtype=np.float64)
    _validate_shapes(model)
    return model


def _validate_shapes(model) -> None:
    n_features = len(model.feature_vocab)
    n_labels = len(model.label_vocab)
    if model.emission_weights.shape != (n_features, n_labels):
        raise DataError("emission weight shape does not match the vocabularies")
    if model.transition_weights.shape != (n_labels, n_labels):
        raise DataError("transition weight shape does not match the label vocabulary")
    if model.start_weights.shape != (n_labels,) or model.end_weights.shape != (n_labels,):
        raise DataError("start/end weight shapes do not match the label vocabulary")


def _load_hmm(payload: dict) -> HiddenMarkovModel:
    model = HiddenMarkovModel(smoothing=payload.get("smoothing", 1.0))
    model._labels = list(payload["labels"])
    model._vocabulary = set(payload["vocabulary"])
    model._start_log_prob = dict(payload["start"])
    model._transition_log_prob = {
        tuple(key.split(" ", 1)): value for key, value in payload["transition"].items()
    }
    model._emission_log_prob = {
        tuple(key.split(" ", 1)): value for key, value in payload["emission"].items()
    }
    model._emission_unknown_log_prob = dict(payload["emission_unknown"])
    model._trained = True
    return model


# ------------------------------------------------------------------ NerModel


def ner_model_to_payload(model: NerModel) -> dict:
    """Serialise a trained :class:`NerModel` (feature extractor + weights)."""
    extractor_kind = (
        "instruction"
        if isinstance(model.feature_extractor, InstructionFeatureExtractor)
        else "ingredient"
    )
    return {
        "version": _FORMAT_VERSION,
        "family": model.family,
        "feature_extractor": extractor_kind,
        "model": sequence_model_to_payload(model.model),
    }


def load_ner_model(payload: dict) -> NerModel:
    """Rebuild a :class:`NerModel` from :func:`ner_model_to_payload` output."""
    extractor_kind = payload.get("feature_extractor", "ingredient")
    if extractor_kind not in _FEATURE_EXTRACTORS:
        raise ConfigurationError(f"unknown feature extractor kind: {extractor_kind!r}")
    _check_version(payload, f"NER model ({extractor_kind})")
    model = NerModel(_FEATURE_EXTRACTORS[extractor_kind](), family=payload.get("family", "perceptron"))
    model.model = load_sequence_model(payload["model"])
    return model


# ----------------------------------------------------------------- POS tagger


def pos_tagger_to_payload(tagger: PerceptronPosTagger) -> dict:
    """Serialise a trained POS tagger."""
    _require(tagger.is_trained, "PerceptronPosTagger")
    return {
        "version": _FORMAT_VERSION,
        "perceptron": tagger.model.to_dict(),
        "tagdict": dict(tagger.tagdict),
    }


def load_pos_tagger(payload: dict) -> PerceptronPosTagger:
    """Rebuild a POS tagger from :func:`pos_tagger_to_payload` output."""
    _check_version(payload, "POS tagger")
    tagger = PerceptronPosTagger()
    tagger.model = AveragedPerceptron.from_dict(payload["perceptron"])
    tagger.tagdict = dict(payload["tagdict"])
    tagger._trained = True
    return tagger


# ---------------------------------------------------------------- dictionaries


def dictionary_to_payload(dictionary: EntityDictionary) -> dict:
    """Serialise an :class:`EntityDictionary`."""
    return {
        "label": dictionary.label,
        "threshold": dictionary.threshold,
        "counts": dict(dictionary.counts),
    }


def dictionary_from_payload(payload: dict) -> EntityDictionary:
    """Rebuild an :class:`EntityDictionary`."""
    return EntityDictionary(
        label=payload["label"],
        counts=dict(payload["counts"]),
        threshold=int(payload["threshold"]),
    )


# -------------------------------------------------------------------- bundle


@dataclass
class PipelineBundle:
    """Everything a fitted pipeline needs to structure new recipes.

    Attributes:
        pos_tagger: Trained POS tagger (drives parsing and POS vectors).
        ingredient_pipeline: Trained ingredient-section pipeline.
        instruction_pipeline: Trained instruction-section pipeline with its
            dictionaries attached.
    """

    pos_tagger: PerceptronPosTagger
    ingredient_pipeline: IngredientPipeline
    instruction_pipeline: InstructionPipeline

    # ------------------------------------------------------------- factories

    @classmethod
    def from_modeler(cls, modeler: RecipeModeler) -> "PipelineBundle":
        """Extract the tag-time components of a fitted :class:`RecipeModeler`."""
        components = modeler.components
        return cls(
            pos_tagger=components.pos_tagger,
            ingredient_pipeline=components.ingredient_pipeline,
            instruction_pipeline=components.instruction_pipeline,
        )

    def to_payload(self) -> dict:
        """Serialise the bundle to a JSON-compatible payload."""
        instruction = self.instruction_pipeline
        return {
            "version": _FORMAT_VERSION,
            "pos_tagger": pos_tagger_to_payload(self.pos_tagger),
            "ingredient_ner": ner_model_to_payload(self.ingredient_pipeline.ner),
            "instruction_ner": ner_model_to_payload(instruction.ner),
            "process_dictionary": (
                dictionary_to_payload(instruction.process_dictionary)
                if instruction.process_dictionary is not None
                else None
            ),
            "utensil_dictionary": (
                dictionary_to_payload(instruction.utensil_dictionary)
                if instruction.utensil_dictionary is not None
                else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PipelineBundle":
        """Rebuild a bundle from :meth:`to_payload` output.

        The payload ``version`` (and, recursively, every component's
        ``version``/``kind``) is validated; mismatches raise
        :class:`~repro.errors.PersistenceError` rather than silently loading
        weights under wrong assumptions.
        """
        if not isinstance(payload, dict):
            raise PersistenceError(
                f"pipeline-bundle payload must be a JSON object, got {type(payload).__name__}"
            )
        _check_version(payload, "pipeline bundle")
        for field in ("pos_tagger", "ingredient_ner", "instruction_ner"):
            if field not in payload:
                raise PersistenceError(f"pipeline-bundle payload is missing its {field!r} field")
        pos_tagger = load_pos_tagger(payload["pos_tagger"])
        ingredient_pipeline = IngredientPipeline()
        ingredient_pipeline.ner = load_ner_model(payload["ingredient_ner"])
        instruction_pipeline = InstructionPipeline()
        instruction_pipeline.ner = load_ner_model(payload["instruction_ner"])
        if payload.get("process_dictionary"):
            instruction_pipeline.process_dictionary = dictionary_from_payload(
                payload["process_dictionary"]
            )
        if payload.get("utensil_dictionary"):
            instruction_pipeline.utensil_dictionary = dictionary_from_payload(
                payload["utensil_dictionary"]
            )
        return cls(
            pos_tagger=pos_tagger,
            ingredient_pipeline=ingredient_pipeline,
            instruction_pipeline=instruction_pipeline,
        )

    # ------------------------------------------------------------------- IO

    def save(self, path: str | Path) -> None:
        """Atomically write the bundle as a single checksummed JSON artifact.

        The payload is wrapped in an envelope carrying the artifact format
        marker, the format version and a SHA-256 over the canonical payload
        JSON, then written to a temp file in the destination directory,
        fsynced and moved into place with ``os.replace`` — a crash mid-save
        (or a concurrent save) can never leave a truncated artifact behind.
        """
        write_artifact(path, self.to_payload(), format=ARTIFACT_FORMAT)

    @classmethod
    def load(cls, path: str | Path) -> "PipelineBundle":
        """Load and validate a bundle previously written by :meth:`save`.

        Both the checksummed envelope format and the legacy bare-payload
        format are accepted; corrupt JSON, checksum mismatches and unknown
        versions all raise :class:`~repro.errors.PersistenceError` with the
        offending path in the message.
        """
        path = Path(path)
        return cls.loads(path.read_text(encoding="utf-8"), source=str(path))

    @classmethod
    def loads(cls, text: str, *, source: str = "<bundle>") -> "PipelineBundle":
        """Validate and rebuild a bundle from artifact *text* already in hand.

        Callers that also fingerprint the artifact (the serving registry)
        parse the very bytes they hashed, so a concurrent re-save between two
        file reads can never pair one file's checksum with another's weights.
        ``source`` only labels error messages.
        """
        payload = parse_artifact(
            text,
            format=ARTIFACT_FORMAT,
            source=source,
            what="bundle artifact",
            allow_bare=True,  # legacy bare payloads; still version-gated below
        )
        return cls.from_payload(payload)

    # ------------------------------------------------------------- modelling

    def model_text(
        self,
        *,
        ingredient_lines: list[str],
        instruction_lines: list[str],
        recipe_id: str = "recipe",
        title: str = "",
        apply_dictionary: bool = True,
    ) -> StructuredRecipe:
        """Structure raw recipe text with the loaded components.

        Mirrors :meth:`repro.core.pipeline.RecipeModeler.model_text` so a
        bundle loaded from disk is a drop-in replacement at tag time.
        """
        from repro.core.recipe_model import InstructionEvent

        extractor = RelationExtractor(self.pos_tagger)
        records = [
            self.ingredient_pipeline.extract_record(line)
            for line in ingredient_lines
            if line.strip()
        ]
        events = []
        for step_index, line in enumerate(instruction_lines):
            if not line.strip():
                continue
            entities = self.instruction_pipeline.extract(line, apply_dictionary=apply_dictionary)
            relations = extractor.extract(list(entities.tokens), list(entities.tags))
            events.append(
                InstructionEvent(
                    step_index=step_index,
                    text=line,
                    processes=entities.processes,
                    ingredients=entities.ingredients,
                    utensils=entities.utensils,
                    relations=tuple(relations),
                )
            )
        return StructuredRecipe(
            recipe_id=recipe_id,
            title=title,
            ingredients=tuple(records),
            events=tuple(events),
        )


def _require(condition: bool, name: str) -> None:
    if not condition:
        raise NotFittedError(f"{name} must be trained before serialisation")
