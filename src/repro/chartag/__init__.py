"""Character-level sequence tagging on the shared engine substrate.

The second workload of the repo: prove that the CSR feature encoder, the
bucketed batch Viterbi, the inference-session caches, the microbatch
queues and the artifact/registry machinery are task-generic, not
recipe-specific.  The pipeline mirrors :mod:`repro.ner` one level down —
the "tokens" are characters:

* :class:`CharFeatureExtractor` — char-window features (identity, class,
  bigrams) over a text line;
* :class:`CharTagger` — the :class:`~repro.ner.model.NerModel` shape over
  characters: any of the three sequence labellers via
  :func:`~repro.ner.model.make_sequence_model`, session-cached tag /
  batched tag_batch, span extraction;
* :class:`CharTagBundle` — the checksummed artifact envelope
  (``repro-chartag-bundle``) served through the same
  :class:`~repro.serve.registry.ModelRegistry` hot-swap;
* :class:`CharTagService` — the serving facade with the exact surface the
  two HTTP front ends are duck-typed over, so ``POST /v1/tag`` with
  ``{"section": "char"}`` serves this workload from the unchanged
  servers;
* :func:`structure_document` — maps tagged char spans of a raw document
  onto a :class:`~repro.core.recipe_model.StructuredRecipe`, so the char
  pipeline feeds the recipe index and query engine end to end.
"""

from repro.chartag.bundle import CHARTAG_ARTIFACT_FORMAT, CharTagBundle
from repro.chartag.features import CharFeatureExtractor
from repro.chartag.model import CharTagger
from repro.chartag.service import CHAR_SECTION, CharTagService
from repro.chartag.structuring import structure_document, structure_raw_jsonl

__all__ = [
    "CHAR_SECTION",
    "CHARTAG_ARTIFACT_FORMAT",
    "CharFeatureExtractor",
    "CharTagBundle",
    "CharTagger",
    "CharTagService",
    "structure_document",
    "structure_raw_jsonl",
]
