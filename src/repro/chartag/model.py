"""The char-level tagging model: NerModel's shape, one level down.

:class:`CharTagger` pairs :class:`~repro.chartag.features.CharFeatureExtractor`
with any of the three sequence labellers from
:func:`~repro.ner.model.make_sequence_model` and runs them over *character*
sequences.  The engine substrate is reused unchanged: the same
:class:`~repro.engine.InferenceSession` caches features and decodes (keyed
on the line's text), ``tag_batch`` dedups cache misses into one
``predict_batch`` call (length-bucketed batch Viterbi for the engine-backed
labellers), and span extraction reuses
:func:`~repro.ner.encoding.spans_from_tags` — a span's ``start``/``end``
are simply character offsets into the line instead of token indices.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine import InferenceSession
from repro.errors import DataError
from repro.ner.encoding import spans_from_tags
from repro.ner.model import TaggedEntity, make_sequence_model
from repro.utils import require_equal_lengths

from repro.chartag.features import CharFeatureExtractor

__all__ = ["CharTagger"]


def _text(chars: str | Sequence[str]) -> str:
    """Normalise a line to its string form.

    The serving queue hands lines around as tuples of single-character
    tokens; the public APIs take strings.  Both must hit the same cache
    entries and produce identical output, so everything is keyed on the
    joined string.
    """
    return chars if isinstance(chars, str) else "".join(chars)


class CharTagger:
    """Character-level sequence tagger over text lines.

    Args:
        feature_extractor: Char-window feature extractor; defaults to a
            fresh :class:`CharFeatureExtractor`.
        family: Sequence-labeller family (``"crf"``, ``"perceptron"``,
            ``"hmm"``).
        seed: Seed for stochastic training procedures.
        **model_options: Extra options forwarded to
            :func:`~repro.ner.model.make_sequence_model`.
    """

    def __init__(
        self,
        feature_extractor: CharFeatureExtractor | None = None,
        *,
        family: str = "perceptron",
        seed: int | None = None,
        **model_options,
    ) -> None:
        self.feature_extractor = feature_extractor or CharFeatureExtractor()
        self.family = family
        self.model = make_sequence_model(family, seed=seed, **model_options)
        self.session = InferenceSession()

    # ----------------------------------------------------------------- train

    @property
    def is_trained(self) -> bool:
        """Whether the underlying sequence model is fitted."""
        return self.model.is_trained

    def train(
        self,
        texts: Sequence[str | Sequence[str]],
        tag_sequences: Sequence[Sequence[str]],
    ) -> "CharTagger":
        """Train on parallel (line, per-character tag sequence) pairs."""
        require_equal_lengths("texts", texts, "tag_sequences", tag_sequences)
        if len(texts) == 0:
            raise DataError("cannot train a char tagger on an empty dataset")
        lines = [_text(chars) for chars in texts]
        for line, tags in zip(lines, tag_sequences):
            if len(line) != len(tags):
                raise DataError(
                    f"char/tag length mismatch: {len(line)} characters vs "
                    f"{len(tags)} tags for line {line!r}"
                )
        features = [self.feature_extractor.sequence_features(line) for line in lines]
        labels = [list(tags) for tags in tag_sequences]
        self.model.fit(features, labels)
        self.session.clear()
        return self

    # ------------------------------------------------------------------- tag

    def _features(self, line: str) -> list[list[str]]:
        """Session-cached feature extraction keyed on the line."""
        cached = self.session.get_features(line)
        if cached is None:
            cached = self.feature_extractor.sequence_features(line)
            self.session.put_features(line, cached)
        return cached

    def tag(self, chars: str | Sequence[str]) -> list[str]:
        """Predict one tag per character of the line."""
        line = _text(chars)
        if not line:
            return []
        cached = self.session.get_decode(line)
        if cached is None:
            cached = tuple(self.model.predict(self._features(line)))
            self.session.put_decode(line, cached)
        return list(cached)

    def tag_batch(
        self, char_sequences: Sequence[str | Sequence[str]]
    ) -> list[list[str]]:
        """Tag many lines with one batched decode for the cache misses.

        Results are element-wise identical to calling :meth:`tag` per line.
        """
        results: list[list[str] | None] = [None] * len(char_sequences)
        miss_positions: dict[str, list[int]] = {}
        for position, chars in enumerate(char_sequences):
            line = _text(chars)
            if not line:
                results[position] = []
                continue
            cached = self.session.get_decode(line)
            if cached is not None:
                results[position] = list(cached)
            else:
                miss_positions.setdefault(line, []).append(position)
        if miss_positions:
            miss_lines = list(miss_positions)
            features = [self._features(line) for line in miss_lines]
            predictions = self.model.predict_batch(features)
            for line, tags in zip(miss_lines, predictions):
                self.session.put_decode(line, tuple(tags))
                for position in miss_positions[line]:
                    results[position] = list(tags)
        return results  # type: ignore[return-value]

    def extract_spans(self, chars: str | Sequence[str]) -> list[TaggedEntity]:
        """Group predicted tags into labelled character spans of the line."""
        line = _text(chars)
        tags = self.tag(line)
        return [
            TaggedEntity(
                label=span.label,
                text=line[span.start : span.end],
                start=span.start,
                end=span.end,
            )
            for span in spans_from_tags(tags)
        ]

    def labels(self) -> list[str]:
        """Labels known to the underlying model (includes ``O`` if present)."""
        return self.model.labels()

    # ----------------------------------------------------------------- stats

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss counters and entry counts of the inference session caches."""
        return self.session.stats()

    def reset_stats(self) -> None:
        """Zero the cache counters while keeping the cached entries warm."""
        self.session.reset_stats()
