"""From char spans to structured recipes.

The recipe pipelines structure text through tokens, POS tags and
dictionaries; the char workload reaches the same
:class:`~repro.core.recipe_model.StructuredRecipe` from nothing but the
tagger's character spans.  A line containing a ``PROCESS`` span is an
instruction step (processes + ingredient names + utensils, one relation
tuple per process); any other line is an ingredient record (first
``NAME``/``STATE``/``QUANTITY``/``UNIT`` spans, with the quantity parsed
numerically).  The output feeds the existing index builder and query
engine unchanged, which is what closes the char pipeline end to end:
generate → tag → structure → index → query.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.core.recipe_model import (
    IngredientRecord,
    InstructionEvent,
    RelationTuple,
    StructuredRecipe,
)
from repro.corpus.reader import iter_jsonl
from repro.corpus.sink import StructuredRecipeSink
from repro.ner.encoding import spans_from_tags
from repro.text.normalize import parse_quantity

from repro.chartag.model import CharTagger

__all__ = ["structure_document", "structure_raw_jsonl"]


def _first(spans, line: str, label: str) -> str:
    for span in spans:
        if span.label == label:
            return line[span.start : span.end]
    return ""


def structure_document(
    tagger: CharTagger,
    doc_id: str,
    title: str,
    lines: Sequence[str],
) -> StructuredRecipe:
    """Tag every line of a raw document and assemble a structured recipe.

    The lines are decoded in one :meth:`~repro.chartag.model.CharTagger.tag_batch`
    call (one batched Viterbi for the cache misses), then each line's
    spans decide its role: ``PROCESS`` anywhere makes it an instruction
    event, otherwise it is an ingredient record.
    """
    tag_sequences = tagger.tag_batch(list(lines))
    records: list[IngredientRecord] = []
    events: list[InstructionEvent] = []
    for line, tags in zip(lines, tag_sequences):
        spans = spans_from_tags(tags)
        labels = {span.label for span in spans}
        if "PROCESS" in labels:
            processes = tuple(
                line[span.start : span.end]
                for span in spans
                if span.label == "PROCESS"
            )
            ingredients = tuple(
                line[span.start : span.end]
                for span in spans
                if span.label == "NAME"
            )
            utensils = tuple(
                line[span.start : span.end]
                for span in spans
                if span.label == "UTENSIL"
            )
            events.append(
                InstructionEvent(
                    step_index=len(events),
                    text=line,
                    processes=processes,
                    ingredients=ingredients,
                    utensils=utensils,
                    relations=tuple(
                        RelationTuple(
                            process=process,
                            ingredients=ingredients,
                            utensils=utensils,
                        )
                        for process in processes
                    ),
                )
            )
        else:
            quantity = _first(spans, line, "QUANTITY")
            records.append(
                IngredientRecord(
                    phrase=line,
                    name=_first(spans, line, "NAME"),
                    state=_first(spans, line, "STATE"),
                    quantity=quantity,
                    unit=_first(spans, line, "UNIT"),
                    quantity_value=parse_quantity(quantity) if quantity else None,
                )
            )
    return StructuredRecipe(
        recipe_id=doc_id,
        title=title,
        ingredients=tuple(records),
        events=tuple(events),
    )


def structure_raw_jsonl(
    tagger: CharTagger,
    input_path: str | Path,
    output_path: str | Path,
) -> int:
    """Structure a raw-document JSONL stream into a structured-recipe sink.

    The input is ``{"doc_id", "title", "lines"}`` per line (the shape
    :func:`repro.corpus.synth.write_raw_documents` emits); the output is
    ``StructuredRecipe.to_json`` per line — directly indexable by
    ``index build`` and ingestable by the daemon.  Both sides stream, so
    memory stays flat regardless of corpus size.  Returns the count.
    """
    import json

    documents = iter_jsonl(input_path, json.loads, what="raw document")
    with StructuredRecipeSink(Path(output_path)) as sink:
        for document in documents:
            sink.write(
                structure_document(
                    tagger,
                    document["doc_id"],
                    document.get("title", ""),
                    document["lines"],
                )
            )
        return sink.count
