"""Serving facade for the char-tagging workload.

:class:`CharTagService` exposes the exact surface both HTTP front ends are
duck-typed over (``plan_tag`` / ``tag_lines`` / ``tag_line`` / ``reload`` /
``model_record`` / ``stats`` / ``close`` plus context management), so
``make_server`` and the asyncio front end serve a char bundle with zero
changes — the only visible difference is the section name: requests address
``{"section": "char"}`` and the per-request "tokens" are the line's
characters.  A single :class:`~repro.serve.microbatch.MicrobatchQueue`
coalesces concurrent lines into shared batch decodes, and the registry is
consulted at flush time so a hot-swap reload lands on the very next flush.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.engine.batching import plan_flush_chunks
from repro.errors import ConfigurationError
from repro.serve.microbatch import MicrobatchQueue
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.serve.service import TagPlan

__all__ = ["CHAR_SECTION", "CharTagService"]

#: The one section this service answers for; requests to the recipe
#: sections get the same ConfigurationError a recipe service raises for
#: ``"char"`` — each front end simply reports the sections it serves.
CHAR_SECTION = "char"


class CharTagService:
    """Tag text lines character-by-character through a microbatch queue.

    Args:
        registry: Registry holding the serving
            :class:`~repro.chartag.bundle.CharTagBundle` (construct it with
            ``loader=lambda text, source: CharTagBundle.loads(text,
            source=source)``).
        model: Registry name of the bundle to serve.
        max_batch / max_tokens / max_delay_s: Forwarded to the queue; the
            token budget counts characters here.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        model: str = "default",
        max_batch: int = 256,
        max_tokens: int = 16384,
        max_delay_s: float = 0.002,
    ) -> None:
        self._registry = registry
        self._model_name = model
        registry.get(model)  # fail fast if nothing is registered under `model`
        self._queues = {
            CHAR_SECTION: MicrobatchQueue(
                self._tag_char_batch,
                name=CHAR_SECTION,
                max_batch=max_batch,
                max_tokens=max_tokens,
                max_delay_s=max_delay_s,
            )
        }

    # ------------------------------------------------------- flush callbacks

    def _tagger(self):
        return self._registry.get(self._model_name).bundle.tagger

    def _tag_char_batch(self, char_sequences):
        return self._tagger().tag_batch(char_sequences)

    # ---------------------------------------------------------------- public

    def plan_tag(self, section: str, lines: Sequence[str]) -> TagPlan:
        """Cut ``lines`` into budget-bounded queue submissions.

        The "token sequences" are the lines' character lists, so the
        queue's padded-token budget bounds the padded *character* count of
        a flush — same invariant, finer grain.
        """
        queue = self._queue(section)
        char_sequences = [list(line) for line in lines]
        nonempty = [index for index, chars in enumerate(char_sequences) if chars]
        chunks = [
            [nonempty[offset] for offset in chunk]
            for chunk in plan_flush_chunks(
                [len(char_sequences[index]) for index in nonempty],
                max_sentences=queue.max_batch,
                max_tokens=queue.max_tokens,
            )
        ]
        return TagPlan(queue=queue, token_sequences=char_sequences, chunks=chunks)

    def tag_lines(
        self, section: str, lines: Sequence[str], *, timeout: float | None = 30.0
    ) -> list[dict]:
        """Tag raw lines; returns ``{"tokens": chars, "tags": ...}`` each.

        Identical contract to the recipe service's ``tag_lines`` (overall
        deadline, empty lines yield empty lists, concurrent callers'
        lines coalesce), with one tag per character.
        """
        plan = self.plan_tag(section, lines)
        deadline = None if timeout is None else time.monotonic() + timeout
        tags: list[list[str]] = [[] for _ in lines]
        for positions in plan.chunks:
            futures = plan.queue.submit_many(
                [plan.token_sequences[index] for index in positions]
            )
            for index, future in zip(positions, futures):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 and not future.done():
                        raise TimeoutError(
                            f"tag request exceeded its {timeout:g}s deadline"
                        )
                try:
                    tags[index] = future.result(timeout=remaining)
                except TimeoutError:
                    raise TimeoutError(
                        f"tag request exceeded its {timeout:g}s deadline"
                    ) from None
        return [
            {"tokens": list(chars), "tags": line_tags}
            for chars, line_tags in zip(plan.token_sequences, tags)
        ]

    def tag_line(self, section: str, line: str, *, timeout: float | None = 30.0) -> dict:
        """Tag one raw line."""
        return self.tag_lines(section, [line], timeout=timeout)[0]

    def reload(self, *, force: bool = False) -> ModelRecord:
        """Hot-swap the serving bundle from its artifact path (see registry)."""
        return self._registry.reload(self._model_name, force=force)

    def model_record(self) -> ModelRecord:
        """Provenance of the currently serving bundle."""
        return self._registry.get(self._model_name)

    def stats(self) -> dict:
        """Model provenance + queue coalescing counters + decode-cache stats."""
        return {
            "model": self.model_record().describe(),
            "queues": {name: queue.stats() for name, queue in self._queues.items()},
            "caches": {CHAR_SECTION: self._tagger().cache_stats()},
        }

    def close(self) -> None:
        """Drain and stop the queue."""
        for queue in self._queues.values():
            queue.close()

    def __enter__(self) -> "CharTagService":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- internal

    def _queue(self, section: str) -> MicrobatchQueue:
        queue = self._queues.get(section)
        if queue is None:
            raise ConfigurationError(
                f"unknown section {section!r}; this server serves "
                f"{tuple(self._queues)}"
            )
        return queue
