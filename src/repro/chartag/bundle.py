"""Artifact packaging for the char-tagging workload.

:class:`CharTagBundle` wraps a trained :class:`~repro.chartag.model.CharTagger`
in the repo's standard checksummed artifact envelope — the same
``{format, version, sha256, payload}`` shape as the recipe pipeline bundle,
written atomically and validated byte-for-byte on load — under its own
format marker, ``repro-chartag-bundle``.  Because :meth:`loads` has the
``(text, *, source=...)`` signature the serving registry's loader hook
expects, a :class:`~repro.serve.registry.ModelRegistry` hot-swaps char
bundles exactly like recipe bundles:

    registry = ModelRegistry(
        loader=lambda text, source: CharTagBundle.loads(text, source=source)
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import PersistenceError
from repro.persistence import (
    FORMAT_VERSION,
    check_payload_version,
    load_sequence_model,
    parse_artifact,
    sequence_model_to_payload,
    write_artifact,
)

from repro.chartag.features import CharFeatureExtractor
from repro.chartag.model import CharTagger

__all__ = ["CHARTAG_ARTIFACT_FORMAT", "CharTagBundle"]

#: ``format`` marker of the char-tagger artifact envelope.
CHARTAG_ARTIFACT_FORMAT = "repro-chartag-bundle"


@dataclass
class CharTagBundle:
    """A trained char tagger, packaged for saving, loading and serving."""

    tagger: CharTagger

    def to_payload(self) -> dict:
        """Serialise the tagger (family, window, weights) to a payload."""
        return {
            "version": FORMAT_VERSION,
            "task": "chartag",
            "family": self.tagger.family,
            "window": self.tagger.feature_extractor.window,
            "model": sequence_model_to_payload(self.tagger.model),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CharTagBundle":
        """Rebuild a bundle from :meth:`to_payload` output (version-gated)."""
        if not isinstance(payload, dict):
            raise PersistenceError(
                f"chartag-bundle payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        check_payload_version(payload, "chartag bundle")
        if payload.get("task") != "chartag":
            raise PersistenceError(
                f"chartag-bundle payload declares task {payload.get('task')!r}; "
                "expected 'chartag' — this artifact belongs to another workload"
            )
        if "model" not in payload:
            raise PersistenceError(
                "chartag-bundle payload is missing its 'model' field"
            )
        extractor = CharFeatureExtractor()
        extractor.window = int(payload.get("window", CharFeatureExtractor.window))
        tagger = CharTagger(extractor, family=payload.get("family", "perceptron"))
        tagger.model = load_sequence_model(payload["model"])
        return cls(tagger)

    # ------------------------------------------------------------------- IO

    def save(self, path: str | Path) -> None:
        """Atomically write the bundle as one checksummed JSON artifact."""
        write_artifact(path, self.to_payload(), format=CHARTAG_ARTIFACT_FORMAT)

    @classmethod
    def load(cls, path: str | Path) -> "CharTagBundle":
        """Load and validate a bundle previously written by :meth:`save`."""
        path = Path(path)
        return cls.loads(path.read_text(encoding="utf-8"), source=str(path))

    @classmethod
    def loads(cls, text: str, *, source: str = "<chartag-bundle>") -> "CharTagBundle":
        """Validate and rebuild a bundle from artifact text already in hand.

        This is the registry loader hook: the registry fingerprints the
        exact bytes it parses, and corrupt JSON, checksum mismatches,
        wrong format markers and unknown versions all raise
        :class:`~repro.errors.PersistenceError`.
        """
        payload = parse_artifact(
            text,
            format=CHARTAG_ARTIFACT_FORMAT,
            source=source,
            what="chartag bundle artifact",
        )
        return cls.from_payload(payload)
