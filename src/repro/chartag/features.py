"""Character-window feature templates for the char-tagging workload.

Where the NER extractors (:mod:`repro.ner.features`) emit features per
*word*, this extractor emits features per *character* of a text line:
character identity, a coarse character class (digit / letter / space /
punctuation), identity and class of the neighbouring characters in a
±``window`` context, and the two surrounding bigrams.  The output has the
exact shape the engine's CSR encoder expects — one ``list[str]`` per
position — so the trained labellers, the batch Viterbi and the inference
session treat a character sequence like any token sequence.

The alphabet is tiny (printable ASCII plus a long tail), so the same
``lru_cache`` memoisation strategy as the word-level extractors pays off
even more here: every static feature string is formatted once per distinct
character (or character pair) for the life of the process.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

__all__ = ["CharFeatureExtractor"]

#: Characters and bigrams are a far smaller space than word vocabularies;
#: this bound exists only to keep adversarial input from growing the memos.
_MEMO_SIZE = 65536


@lru_cache(maxsize=_MEMO_SIZE)
def _char_class(char: str) -> str:
    if char.isdigit():
        return "d"
    if char.isalpha():
        return "A" if char.isupper() else "a"
    if char.isspace():
        return "_"
    return "p"


@lru_cache(maxsize=_MEMO_SIZE)
def _char_static(char: str) -> tuple[tuple[str, ...], bool]:
    """(static features, is_upper flag) for one character."""
    lowered = char.lower()
    return (
        ("bias", f"c={lowered}", f"cls={_char_class(char)}"),
        char.isupper(),
    )


@lru_cache(maxsize=_MEMO_SIZE)
def _neighbor(label: str, char: str) -> str:
    """Cached ``c[-1]=x`` style context strings (lower-cased identity)."""
    return f"c[{label}]={char.lower()}"


@lru_cache(maxsize=_MEMO_SIZE)
def _neighbor_class(label: str, char: str) -> str:
    return f"cls[{label}]={_char_class(char)}"


@lru_cache(maxsize=_MEMO_SIZE)
def _bigram(left: str, right: str) -> str:
    return f"bi={left.lower()}{right.lower()}"


@lru_cache(maxsize=64)
def _window_labels(window: int) -> tuple[tuple[int, str, str, str, str], ...]:
    """(offset, left/right labels, left/right boundary features)."""
    return tuple(
        (offset, f"-{offset}", f"+{offset}", f"c[-{offset}]=<s>", f"c[+{offset}]=</s>")
        for offset in range(1, window + 1)
    )


class CharFeatureExtractor:
    """Per-character features over a text line.

    ``sequence_features`` accepts either a string or any sequence of
    single-character tokens and treats both identically — the serving
    queue hands sequences around as tuples of characters, while the
    training and tagging APIs naturally work on strings, and the two
    views must produce byte-identical features.

    Stateless (the memos above are module-level and thread-safe), so one
    instance can be shared across threads and experiments.
    """

    window = 3

    def sequence_features(self, chars: str | Sequence[str]) -> list[list[str]]:
        """Feature lists for every character position of ``chars``."""
        text = chars if isinstance(chars, str) else "".join(chars)
        return [self.char_features(text, index) for index in range(len(text))]

    def char_features(self, text: str, index: int) -> list[str]:
        """Features for the character at ``index`` of ``text``."""
        char = text[index]
        length = len(text)
        static, is_upper = _char_static(char)
        features = list(static)
        features.append(
            "pos=first"
            if index == 0
            else "pos=last" if index == length - 1 else "pos=mid"
        )
        if is_upper:
            features.append("is_upper")
        for offset, left_label, right_label, left_bound, right_bound in _window_labels(
            self.window
        ):
            features.append(
                _neighbor(left_label, text[index - offset])
                if index - offset >= 0
                else left_bound
            )
            features.append(
                _neighbor(right_label, text[index + offset])
                if index + offset < length
                else right_bound
            )
        # Class of the immediate neighbours: lets the model see word
        # boundaries (letter→space) and number boundaries (digit→letter)
        # without memorising every character pair.
        features.append(
            _neighbor_class("-1", text[index - 1]) if index > 0 else "cls[-1]=<s>"
        )
        features.append(
            _neighbor_class("+1", text[index + 1])
            if index + 1 < length
            else "cls[+1]=</s>"
        )
        features.append(_bigram(text[index - 1], char) if index > 0 else "bi=<s>")
        features.append(
            _bigram(char, text[index + 1]) if index + 1 < length else "bi=</s>"
        )
        return features
