"""Corpus-structuring perf smoke: streaming + multi-core vs single-worker.

Builds a decode-heavy corpus (every line made unique so the decode caches
cannot collapse the work), then measures the streaming corpus path:

* **equivalence**: ``model_corpus_iter`` must be element-wise identical to
  the per-recipe ``model_recipe`` path (the wrapper ``model_corpus`` is that
  same iterator materialised);
* **single-worker streaming**: wall-clock of the chunked in-process path
  with cold caches — the baseline a deployment pays per corpus pass;
* **parallel structuring**: the same chunks across a worker pool
  (``workers = min(4, cores)``), which must be element-wise identical and,
  on a >=4-core runner, at least 2x faster than single-worker.

Results land in ``benchmarks/BENCH_corpus.json``.  Runners without multiple
cores record a guarded skip for the parallel section instead of failing.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.data.models import AnnotatedInstruction, AnnotatedPhrase, Recipe
from repro.data.recipedb import RecipeDB

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_corpus.json"
MIN_PARALLEL_SPEEDUP = 2.0
#: The 2x floor is only asserted with this many cores; with 2-3 cores the
#: speedup is recorded but advisory (2 workers cannot reliably reach 2x).
FLOOR_CORES = 4
COPIES = 2
CHUNK_RECIPES = 16


def _unique_phrase(phrase: AnnotatedPhrase, marker: str) -> AnnotatedPhrase:
    return AnnotatedPhrase(
        text=f"{phrase.text} {marker}",
        tokens=(*phrase.tokens, marker),
        ner_tags=(*phrase.ner_tags, "O"),
        pos_tags=(*phrase.pos_tags, "CD"),
        canonical_name=phrase.canonical_name,
        template_id=phrase.template_id,
    )


def _unique_step(step: AnnotatedInstruction, marker: str) -> AnnotatedInstruction:
    return AnnotatedInstruction(
        text=f"{step.text} {marker}",
        tokens=(*step.tokens, marker),
        ner_tags=(*step.ner_tags, "O"),
        pos_tags=(*step.pos_tags, "CD"),
        relations=step.relations,
    )


@pytest.fixture(scope="module")
def decode_heavy_corpus(corpora):
    """COPIES x the small corpus with a unique marker token on every line.

    Unique lines defeat the decoded-line caches, so the benchmark times the
    full decode + assembly work a real (deduplicated) corpus pass performs.
    """
    recipes = []
    for copy in range(COPIES):
        for index, recipe in enumerate(corpora.combined):
            marker = f"u{copy}x{index}"
            recipes.append(
                Recipe(
                    recipe_id=f"{recipe.recipe_id}-{copy}",
                    title=recipe.title,
                    cuisine=recipe.cuisine,
                    source=recipe.source,
                    ingredients=tuple(
                        _unique_phrase(phrase, marker) for phrase in recipe.ingredients
                    ),
                    instructions=tuple(
                        _unique_step(step, marker) for step in recipe.instructions
                    ),
                )
            )
    return RecipeDB(recipes)


def _clear_decode_caches(modeler) -> None:
    modeler.components.ingredient_pipeline.ner.session.clear()
    modeler.components.instruction_pipeline.ner.session.clear()


def test_bench_corpus(modeler, decode_heavy_corpus):
    corpus = decode_heavy_corpus
    lines = sum(
        len(recipe.ingredients) + len(recipe.instructions) for recipe in corpus
    )

    # ---- equivalence: streaming output vs the per-recipe path.
    _clear_decode_caches(modeler)
    expected = [modeler.model_recipe(recipe) for recipe in corpus.recipes[:20]]
    _clear_decode_caches(modeler)
    streamed_head = list(
        modeler.model_corpus_iter(corpus.recipes[:20], chunk_recipes=CHUNK_RECIPES)
    )
    assert streamed_head == expected, "streaming output must match model_recipe"

    # ---- single-worker streaming pass, cold caches.
    _clear_decode_caches(modeler)
    started = time.perf_counter()
    single = list(
        modeler.model_corpus_iter(corpus, workers=1, chunk_recipes=CHUNK_RECIPES)
    )
    single_s = time.perf_counter() - started
    assert len(single) == len(corpus)

    report = {
        "recipes": len(corpus),
        "lines": lines,
        "chunk_recipes": CHUNK_RECIPES,
        "cores": os.cpu_count() or 1,
        "streaming_identical": True,
        "single_worker": {
            "seconds": round(single_s, 3),
            "recipes_per_s": round(len(corpus) / single_s, 1),
        },
    }

    # ---- parallel structuring: guarded skip when cores are unavailable.
    cores = os.cpu_count() or 1
    if cores < 2:
        report["parallel"] = {
            "skipped": f"only {cores} core(s) available; parallel speedup not measurable"
        }
        _write_and_emit(report)
        return

    workers = min(4, cores)
    started = time.perf_counter()
    parallel = list(
        modeler.model_corpus_iter(
            corpus, workers=workers, chunk_recipes=CHUNK_RECIPES
        )
    )
    parallel_s = time.perf_counter() - started
    assert parallel == single, "parallel structuring must be element-wise identical"

    speedup = single_s / parallel_s
    report["parallel"] = {
        "workers": workers,
        "seconds": round(parallel_s, 3),
        "recipes_per_s": round(len(corpus) / parallel_s, 1),
        "speedup": round(speedup, 2),
        "identical": True,
        "floor_asserted": cores >= FLOOR_CORES,
    }
    _write_and_emit(report)

    if cores >= FLOOR_CORES:
        assert speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel corpus structuring speedup {speedup:.1f}x below the "
            f"{MIN_PARALLEL_SPEEDUP}x floor on a {cores}-core runner"
        )


def _write_and_emit(report: dict) -> None:
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("CORPUS PERF SMOKE (BENCH_corpus.json)", json.dumps(report, indent=2))
