"""Synthetic-corpus generator perf smoke: scale, determinism, downstream legs.

Streams a 100k-document corpus from :mod:`repro.corpus.synth` and checks
the three properties the scale-out harness depends on:

* **determinism at scale** — a second full generation pass must hash to
  the same SHA-256, byte for byte, without writing a second file;
* **generation throughput** (docs/sec, guarded floor on capable runners)
  — the generator must outrun every downstream consumer so it is never
  the bottleneck of a load test;
* **downstream legs** — a prefix of the corpus feeds ``index build`` and
  the ingest daemon unchanged (the corpus lines are the daemon's feed
  protocol), with the built index spot-checked against the ground-truth
  manifest's document frequencies.

Results land in ``benchmarks/BENCH_synth.json``; small runners record a
guarded skip for the throughput floor instead of failing.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.corpus.synth import (
    SynthParams,
    iter_documents,
    load_manifest,
    write_synth_corpus,
)
from repro.index import IndexBuilder, QueryEngine, build_sharded_index
from repro.ingest import IngestDaemon

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_synth.json"
DOCS = 100_000
INDEX_DOCS = 4_000
INGEST_SEED_DOCS = 50
INGEST_FEED_DOCS = 300
MIN_DOCS_PER_S = 500.0
#: On a single core the generator time-slices with pytest's own overhead
#: and the floor becomes scheduler noise: record, don't assert.
MIN_CORES = 2
SPOT_CHECK_TERMS = 10


def test_bench_synth(tmp_path):
    params = SynthParams(seed=20260808, docs=DOCS)
    corpus = tmp_path / "synth.jsonl"
    manifest_path = tmp_path / "synth.manifest.json"

    # ---- (a) full generation pass, written to disk with its manifest.
    started = time.perf_counter()
    summary = write_synth_corpus(params, corpus, manifest_path=manifest_path)
    generate_s = time.perf_counter() - started
    assert summary["documents"] == DOCS
    docs_per_s = DOCS / generate_s

    # ---- (b) determinism: a second pass re-hashes to the same corpus
    # SHA-256 without touching disk (same bytes the sink would write).
    started = time.perf_counter()
    digest = hashlib.sha256()
    for document in iter_documents(params):
        digest.update(document.recipe.to_json().encode("utf-8"))
        digest.update(b"\n")
    rehash_s = time.perf_counter() - started
    assert digest.hexdigest() == summary["corpus_sha256"], (
        "second generation pass is not byte-identical to the first"
    )

    # ---- (c) index-build leg over the corpus head (the docs=N corpus is a
    # byte-prefix of the docs=M corpus, so the head IS the small corpus).
    head = tmp_path / "head.jsonl"
    with corpus.open("rb") as source, head.open("wb") as target:
        for _ in range(INDEX_DOCS):
            target.write(source.readline())
    started = time.perf_counter()
    index = IndexBuilder.build_from_jsonl(head)
    index_s = time.perf_counter() - started
    assert index.doc_count == INDEX_DOCS

    # Spot-check retrieval against the ground-truth manifest: over the FULL
    # corpus the recorded document frequency is exact, so the head index
    # must return at most that many matches (and at least one for head
    # terms, which the Zipf skew guarantees appear early).
    manifest = load_manifest(manifest_path)
    engine = QueryEngine(index)
    checked = 0
    for term, count in list(manifest["fields"]["ingredient"].items()):
        if checked >= SPOT_CHECK_TERMS:
            break
        matches = engine.execute(f'ingredient:"{term}"')
        assert len(matches) <= count, (term, len(matches), count)
        checked += 1
    assert checked == SPOT_CHECK_TERMS

    # ---- (d) ingest-daemon leg: corpus lines are the feed protocol, so a
    # slice of the corpus streams through the daemon into a live manifest.
    base = tmp_path / "base.jsonl"
    with corpus.open("rb") as source, base.open("wb") as target:
        for _ in range(INGEST_SEED_DOCS):
            target.write(source.readline())
    live_manifest = tmp_path / "live.manifest.json"
    build_sharded_index(base, live_manifest, num_shards=2)
    feed = tmp_path / "feed.jsonl"
    with corpus.open("rb") as source, feed.open("wb") as target:
        for _ in range(INGEST_SEED_DOCS + INGEST_FEED_DOCS):
            line = source.readline()
            if _ >= INGEST_SEED_DOCS:
                target.write(line)
    daemon = IngestDaemon(live_manifest, feed, batch_limit=1024)
    started = time.perf_counter()
    while daemon.poll_once() is not None:
        pass
    ingest_s = time.perf_counter() - started
    stats = daemon.stats()
    assert stats["docs_ingested"] == INGEST_FEED_DOCS
    assert stats["feed_errors"] == 0
    assert stats["pending_bytes"] == 0

    cores = os.cpu_count() or 1
    floor_asserted = cores >= MIN_CORES
    report = {
        "documents": DOCS,
        "corpus_sha256": summary["corpus_sha256"],
        "corpus_bytes": corpus.stat().st_size,
        "byte_identical_across_runs": True,
        "cores": cores,
        "generate": {
            "seconds": round(generate_s, 3),
            "docs_per_s": round(docs_per_s, 1),
        },
        "rehash": {
            "seconds": round(rehash_s, 3),
            "docs_per_s": round(DOCS / rehash_s, 1),
        },
        "index_build": {
            "documents": INDEX_DOCS,
            "seconds": round(index_s, 3),
            "docs_per_s": round(INDEX_DOCS / index_s, 1),
        },
        "ingest": {
            "documents": INGEST_FEED_DOCS,
            "seconds": round(ingest_s, 3),
            "docs_per_s": round(INGEST_FEED_DOCS / ingest_s, 1),
        },
        "floor": {"docs_per_s": MIN_DOCS_PER_S},
        "floor_asserted": floor_asserted,
    }
    if not floor_asserted:
        report["skipped"] = (
            f"runner has {cores} core(s) (< {MIN_CORES}); generation "
            "throughput recorded but not asserted"
        )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("SYNTH PERF SMOKE (BENCH_synth.json)", json.dumps(report, indent=2))

    if floor_asserted:
        assert docs_per_s >= MIN_DOCS_PER_S, (
            f"generation throughput {docs_per_s:.0f} docs/s is below the "
            f"{MIN_DOCS_PER_S} docs/s floor"
        )
