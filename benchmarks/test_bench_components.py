"""Microbenchmarks of the individual substrates (not tied to a paper table).

These measure the throughput of the components a downstream user calls most:
tokenisation, POS tagging, POS vectorisation, ingredient NER tagging and
K-Means clustering.  They exist so performance regressions in the substrates
are caught even when the end-to-end experiment benchmarks stay green.
"""

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.pos.vectorizer import PosBagOfWordsVectorizer
from repro.text.tokenizer import tokenize


def test_tokenizer_throughput(benchmark, corpora):
    phrases = [phrase.text for phrase in corpora.combined.ingredient_phrases()]

    def tokenize_all():
        return [tokenize(phrase) for phrase in phrases]

    tokens = benchmark(tokenize_all)
    assert len(tokens) == len(phrases)


def test_pos_tagging_throughput(benchmark, corpora, modeler):
    tagger = modeler.components.pos_tagger
    sequences = [list(phrase.tokens) for phrase in corpora.combined.ingredient_phrases()[:400]]

    def tag_all():
        return [tagger.tag_sequence(sequence) for sequence in sequences]

    tagged = benchmark(tag_all)
    assert len(tagged) == len(sequences)


def test_pos_vectorisation_throughput(benchmark, corpora, modeler):
    vectorizer = PosBagOfWordsVectorizer(modeler.components.pos_tagger)
    sequences = [list(phrase.tokens) for phrase in corpora.combined.unique_phrases()[:400]]

    def vectorise_all():
        return vectorizer.transform_tokenized(sequences)

    matrix = benchmark(vectorise_all)
    assert matrix.shape == (len(sequences), 36)


def test_ingredient_ner_throughput(benchmark, corpora, modeler):
    pipeline = modeler.components.ingredient_pipeline
    sequences = [list(phrase.tokens) for phrase in corpora.combined.ingredient_phrases()[:400]]

    def tag_all():
        return [pipeline.tag_tokens(sequence) for sequence in sequences]

    tagged = benchmark(tag_all)
    assert len(tagged) == len(sequences)


def test_kmeans_throughput(benchmark, corpora, modeler):
    vectorizer = PosBagOfWordsVectorizer(modeler.components.pos_tagger)
    vectors = vectorizer.transform_tokenized(
        [list(phrase.tokens) for phrase in corpora.combined.unique_phrases()]
    )

    def cluster():
        return KMeans(23, seed=0, n_init=2).fit(vectors)

    result = benchmark(cluster)
    assert result.centroids.shape == (23, 36)
    assert np.isfinite(result.inertia)
