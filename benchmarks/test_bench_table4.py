"""Benchmark: Table IV -- cross-corpus ingredient NER evaluation (3x3 F1 matrix)."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import table4


def test_table4_cross_corpus_matrix(benchmark, corpora):
    """Time the full three-model training sweep and print both matrices."""
    result = benchmark.pedantic(
        lambda: table4.run(corpora=corpora, seed=BENCH_SEED), rounds=1, iterations=1
    )
    emit("Table IV", table4.render(result))

    matrix = result.matrix
    # Paper shape 1: each single-corpus model is better (or close) on its own
    # corpus than on the other corpus.
    assert matrix["AllRecipes"]["AllRecipes"] >= matrix["FOOD.com"]["AllRecipes"] - 0.03
    assert matrix["FOOD.com"]["FOOD.com"] >= matrix["AllRecipes"]["FOOD.com"] - 0.03
    # Paper shape 2: the AllRecipes-only model transfers worst to FOOD.com.
    assert matrix["FOOD.com"]["AllRecipes"] <= matrix["FOOD.com"]["FOOD.com"] + 0.02
    # Paper shape 3: the combined model stays within a few points of the best
    # single-corpus model on every test set.
    for test_name in ("AllRecipes", "FOOD.com", "BOTH"):
        best_single = max(matrix[test_name]["AllRecipes"], matrix[test_name]["FOOD.com"])
        assert matrix[test_name]["BOTH"] >= best_single - 0.06
    # All values live in the paper's neighbourhood (high-0.8s to high-0.9s).
    values = [value for row in matrix.values() for value in row.values()]
    assert min(values) > 0.75
