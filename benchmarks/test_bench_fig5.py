"""Benchmark: Fig. 5 -- many-to-many relation extraction."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import fig5


def test_fig5_relation_extraction(benchmark, corpora):
    """Time the Fig. 5 experiment (NER + parsing + relation extraction)."""
    result = benchmark.pedantic(
        lambda: fig5.run(corpora=corpora, seed=BENCH_SEED), rounds=1, iterations=1
    )
    emit("Fig. 5", fig5.render(result))

    # The canonical example: Bring + water and Bring + pot combine into one
    # many-to-many tuple.
    processes = [relation.process for relation in result.example_relations]
    assert "bring" in processes
    bring = result.example_relations[processes.index("bring")]
    assert "water" in bring.ingredients
    assert "pot" in bring.utensils
    # Corpus-level pair extraction quality.
    assert result.precision > 0.7
    assert result.recall > 0.6
    assert result.f1 > 0.65


def test_fig5_extraction_throughput(benchmark, corpora, modeler):
    """Microbenchmark: relation tuples extracted per second on corpus steps."""
    components = modeler.components
    steps = corpora.combined.instruction_steps()[:100]

    def extract_all():
        extracted = []
        for step in steps:
            tags = components.instruction_pipeline.tag_tokens(list(step.tokens))
            extracted.append(
                components.relation_extractor.extract(
                    list(step.tokens), tags, pos_tags=list(step.pos_tags)
                )
            )
        return extracted

    relations = benchmark(extract_all)
    assert len(relations) == len(steps)
