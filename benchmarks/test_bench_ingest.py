"""Continuous-ingestion perf smoke: sustained throughput under live reads.

Seeds a shard manifest, then runs the real :class:`IngestDaemon` (tailer
thread + compaction thread) while a feed writer streams the rest of the
corpus in waves and a query thread hammers the search service through its
auto-reload path — the serving-side configuration of ``serve
--ingest-watch``.  Measured:

* **sustained ingest throughput** (docs/sec from first append to a fully
  drained feed), which must clear a floor on capable runners — the
  daemon's one-commit-per-batch design lives or dies on batching;
* **query latency during compaction** (p50/p95 across the storm, every
  search checking the manifest file for republication), where p95 must
  stay under a ceiling — readers are never blocked by the writer, so
  latency must not degrade to rebuild-the-index territory.

The run must cross enough generations and at least one compaction to be
representative.  Results land in ``benchmarks/BENCH_ingest.json``; small
runners record a guarded skip for the floors instead of failing.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.corpus import write_structured_jsonl
from repro.index import ShardManifest, build_sharded_index
from repro.ingest import IngestDaemon, TieredCompactionPolicy
from repro.serve import SearchService

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_ingest.json"
MIN_CORES = 4
MIN_DOCS_PER_S = 20.0
MAX_QUERY_P95_MS = 250.0
#: Below this much ingest wall time the throughput ratio is noise.
MIN_MEASURABLE_INGEST_S = 0.5
STRUCTURE_HEAD = 40
BASE_COPIES = 5
WAVES = 12
WAVE_COPIES = 2  # docs per wave = STRUCTURE_HEAD * WAVE_COPIES
QUERIES = (
    "NOT ingredient:unseen",
    "ingredient:salt AND NOT process:bake",
)


@pytest.fixture(scope="module")
def structured_recipes(modeler, corpora):
    return [
        modeler.model_recipe(recipe)
        for recipe in corpora.combined.recipes[:STRUCTURE_HEAD]
    ]


def _replicas(recipes, tag, copies):
    return [
        dataclasses.replace(recipe, recipe_id=f"{recipe.recipe_id}-{tag}{copy}")
        for copy in range(copies)
        for recipe in recipes
    ]


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_bench_ingest(structured_recipes, tmp_path):
    base_jsonl = tmp_path / "base.jsonl"
    write_structured_jsonl(base_jsonl, _replicas(structured_recipes, "b", BASE_COPIES))
    manifest_path = tmp_path / "live.manifest.json"
    build_sharded_index(base_jsonl, manifest_path, num_shards=4)

    feed = tmp_path / "feed.jsonl"
    feed.write_text("")
    generations = []
    daemon = IngestDaemon(
        manifest_path,
        feed,
        policy=TieredCompactionPolicy(max_deltas=4),
        batch_limit=1024,
        poll_interval_s=0.002,
        compact_interval_s=0.01,
        on_publish=lambda manifest: generations.append(manifest.generation),
    )
    search = SearchService.from_artifact(
        manifest_path, default_limit=10, auto_reload_interval_s=0.0
    )

    latencies_ms = []
    stop = threading.Event()

    def query_storm():
        while not stop.is_set():
            for query in QUERIES:
                started = time.perf_counter()
                search.search(query, rank=True)
                latencies_ms.append((time.perf_counter() - started) * 1000.0)

    reader = threading.Thread(target=query_storm, daemon=True)
    waves = [
        _replicas(structured_recipes, f"w{wave}", WAVE_COPIES)
        for wave in range(WAVES)
    ]
    ingested_docs = sum(len(wave) for wave in waves)

    reader.start()
    started = time.perf_counter()
    with daemon:
        for wave in waves:
            with feed.open("a") as handle:
                for recipe in wave:
                    handle.write(recipe.to_json() + "\n")
            # Pace the writer just enough for waves to land as separate
            # generations (a firehose would coalesce into a few batches).
            deadline = time.perf_counter() + 2.0
            while (
                daemon.stats()["pending_bytes"] > 0
                and time.perf_counter() < deadline
            ):
                time.sleep(0.001)
        while daemon.stats()["pending_bytes"] > 0:
            time.sleep(0.005)
    ingest_s = time.perf_counter() - started
    stop.set()
    reader.join(timeout=30)

    stats = daemon.stats()
    assert stats["docs_ingested"] == ingested_docs
    assert stats["feed_errors"] == 0
    assert len(set(generations)) >= 10, generations
    assert stats["compactions"] >= 1
    final = ShardManifest.load(manifest_path)
    assert final.live_doc_count == ingested_docs + STRUCTURE_HEAD * BASE_COPIES

    docs_per_s = ingested_docs / ingest_s if ingest_s else float("inf")
    p50 = _percentile(latencies_ms, 0.50)
    p95 = _percentile(latencies_ms, 0.95)
    cores = os.cpu_count() or 1
    floor_asserted = cores >= MIN_CORES and ingest_s >= MIN_MEASURABLE_INGEST_S
    report = {
        "base_documents": STRUCTURE_HEAD * BASE_COPIES,
        "ingested_documents": ingested_docs,
        "waves": WAVES,
        "generations": len(set(generations)),
        "compactions": stats["compactions"],
        "commit_conflicts": stats["commit_conflicts"],
        "cores": cores,
        "ingest_s": round(ingest_s, 3),
        "docs_per_s": round(docs_per_s, 1),
        "queries_during_storm": len(latencies_ms),
        "query_p50_ms": round(p50, 3),
        "query_p95_ms": round(p95, 3),
        "auto_reload_swaps": search.stats()["auto_reload"]["swaps"],
        "floor": {
            "docs_per_s": MIN_DOCS_PER_S,
            "query_p95_ms": MAX_QUERY_P95_MS,
        },
        "floor_asserted": floor_asserted,
    }
    if not floor_asserted:
        report["skipped"] = (
            f"runner has {cores} cores and ingest took {ingest_s:.3f}s (need "
            f">= {MIN_CORES} cores and >= {MIN_MEASURABLE_INGEST_S}s to assert "
            "the floors); throughput and latency recorded but not asserted"
        )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("INGEST PERF SMOKE (BENCH_ingest.json)", json.dumps(report, indent=2))

    if floor_asserted:
        assert docs_per_s >= MIN_DOCS_PER_S, (
            f"sustained ingest throughput {docs_per_s:.1f} docs/s is below the "
            f"{MIN_DOCS_PER_S} docs/s floor ({len(set(generations))} "
            "generations)"
        )
        assert p95 <= MAX_QUERY_P95_MS, (
            f"query p95 {p95:.1f}ms during live ingest/compaction exceeds the "
            f"{MAX_QUERY_P95_MS}ms ceiling ({len(latencies_ms)} queries)"
        )
