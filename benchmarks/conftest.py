"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
corpora and the fitted end-to-end pipeline are built once per session; the
individual benchmarks then time the experiment-specific work (training the
models under comparison, clustering, relation extraction, ...) and print the
same rows the paper reports so the output can be compared side by side with
the published numbers (see EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only
    pytest benchmarks/ --benchmark-only -s      # also show the rendered tables
"""

from __future__ import annotations

import pytest

from repro.experiments.common import build_corpora, train_modeler

#: Corpus scale used by the benchmarks; "small" keeps every benchmark under a
#: few seconds while remaining large enough for the paper's shapes to show.
BENCH_SCALE = "small"
BENCH_SEED = 0


@pytest.fixture(scope="session")
def corpora():
    """AllRecipes / FOOD.com / combined corpora at the benchmark scale."""
    return build_corpora(scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def modeler(corpora):
    """End-to-end pipeline fitted on the combined corpus."""
    return train_modeler(corpora.combined, seed=BENCH_SEED)


def emit(title: str, body: str) -> None:
    """Print a rendered experiment report (visible with ``pytest -s``)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
