"""Benchmark: Table I -- NER annotation of the paper's example ingredient phrases."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import table1


def test_table1_example_annotations(benchmark, modeler):
    """Time the annotation of the seven Table I phrases with the fitted pipeline."""

    def annotate():
        return [
            modeler.components.ingredient_pipeline.extract_record(phrase)
            for phrase in table1.PAPER_PHRASES
        ]

    records = benchmark(annotate)
    assert len(records) == 7
    # The headline attributes of the first example phrase must be recovered.
    first = records[0]
    assert first.unit == "sheet"
    assert first.quantity == "1"


def test_table1_full_reproduction(benchmark, corpora):
    """Time the full Table I experiment (training included) and print the table."""
    result = benchmark.pedantic(
        lambda: table1.run(scale="tiny", seed=BENCH_SEED), rounds=1, iterations=1
    )
    emit("Table I", table1.render(result))
    assert result.attribute_agreement > 0.7
