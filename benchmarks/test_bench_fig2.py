"""Benchmark: Fig. 2 -- K-Means clustering of POS vectors and the two PCA views."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import fig2


def test_fig2_clustering_and_pca(benchmark, corpora):
    """Time vectorisation, the k sweep, clustering and both PCA variants."""
    result = benchmark.pedantic(
        lambda: fig2.run(corpora=corpora, seed=BENCH_SEED), rounds=1, iterations=1
    )
    emit("Fig. 2", fig2.render(result))

    # The paper uses 23 clusters and reports that they are interpretable
    # lexical-structure families; purity against the generator's templates is
    # the numerical proxy for that interpretability.
    assert result.n_clusters == 23
    assert result.purity_high_dim > 0.45
    # Clustering in the original 36-D space is at least as faithful to the
    # structure families as clustering the 2-D projection (Fig 2a vs 2b).
    assert result.purity_high_dim >= result.purity_low_dim - 0.05
    # The inertia curve decreases with k (elbow criterion prerequisite).
    values = [result.inertia_by_k[k] for k in sorted(result.inertia_by_k)]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    # Every cluster exposes at most 50 representative phrases, as in the figure.
    assert all(len(members) <= 50 for members in result.representatives.values())
