"""Serving perf smoke: microbatched queue vs per-request decoding.

Simulates the two serving architectures on a >=1k-line corpus with the same
trained ingredient NER model:

* **per-request**: each line is feature-extracted and Viterbi-decoded on its
  own, the way a naive HTTP handler would do it (no shared state between
  requests);
* **microbatched**: every line goes through a :class:`MicrobatchQueue` over
  ``NerModel.tag_batch``, so concurrent requests coalesce into a handful of
  length-bucketed batch decodes.

Both paths must produce byte-identical tags (and match ``tag_batch``
itself); the measured wall times, throughputs and flush counters are written
to ``benchmarks/BENCH_serve.json``.  The run fails if the microbatched
throughput is less than 3x the per-request loop.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    MicrobatchQueue,
    ModelRegistry,
    TaggingService,
    make_server,
    start_in_thread,
)

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_serve.json"
MIN_SPEEDUP = 3.0
MIN_LINES = 1000
REPEATS = 3
#: Extra best-of rounds for the microbatched side before giving up on the
#: floor: the queue's flush thread competes with the submitter, so a noisy
#: scheduler can eat the margin on any single measurement.
MAX_FLOOR_ATTEMPTS = 3
#: Below this many cores the submitter and the flush thread time-slice one
#: CPU and the measured speedup is scheduler noise: record, don't assert.
MIN_CORES = 2

#: End-to-end front-end sweep shape: requests per sweep x lines per request.
SWEEP_REQUESTS = 64
LINES_PER_REQUEST = 8
CONNECTIONS = (1, 8, 32)
#: The async front end must at least match the threaded one at 32
#: connections (it measures ~10-20x ahead; the report records the ratio).
MIN_ASYNC_RATIO = 1.0


def _best_time(function, *, setup=None):
    best = np.inf
    result = None
    for _ in range(REPEATS):
        if setup is not None:
            setup()
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.fixture(scope="module")
def serving_corpus(corpora):
    """Every ingredient line of the small corpus, as serving requests."""
    lines = [list(phrase.tokens) for phrase in corpora.combined.ingredient_phrases()]
    assert len(lines) >= MIN_LINES, "serving benchmark needs a >=1k-line corpus"
    return lines


def test_bench_serve(modeler, serving_corpus):
    model = modeler.components.ingredient_pipeline.ner
    lines = serving_corpus

    # Reference output: the engine's own batched decode.
    model.session.clear()
    expected = model.tag_batch(lines)

    # ---- (a) per-request decode loop: one kernel call per line, no caches.
    def per_request():
        return [
            model.model.predict(model.feature_extractor.sequence_features(tokens))
            for tokens in lines
        ]

    per_request_s, sequential = _best_time(per_request)
    assert sequential == expected, "per-request decoding must match tag_batch"

    # ---- (b) microbatched queue over tag_batch, cold caches every repeat.
    last_stats = {}

    def microbatched():
        with MicrobatchQueue(
            model.tag_batch,
            max_batch=512,
            max_tokens=32768,
            max_delay_s=0.001,
            name="bench",
        ) as queue:
            results = queue.tag_many(lines, timeout=120)
        last_stats.update(queue.stats())
        return results

    # Best-of-N with retry: keep the fastest microbatched time across up to
    # MAX_FLOOR_ATTEMPTS rounds, stopping early once the floor is met — a
    # single noisy round must not fail an otherwise healthy margin.
    microbatch_s = np.inf
    for _ in range(MAX_FLOOR_ATTEMPTS):
        round_s, batched = _best_time(microbatched, setup=model.session.clear)
        assert batched == expected, (
            "microbatched serving must be byte-identical to tag_batch"
        )
        microbatch_s = min(microbatch_s, round_s)
        if per_request_s / microbatch_s >= MIN_SPEEDUP:
            break

    cores = os.cpu_count() or 1
    floor_asserted = cores >= MIN_CORES
    speedup = per_request_s / microbatch_s
    report = {
        "lines": len(lines),
        "unique_lines": len({tuple(tokens) for tokens in lines}),
        "per_request": {
            "seconds": round(per_request_s, 6),
            "lines_per_s": round(len(lines) / per_request_s, 1),
        },
        "microbatch": {
            "seconds": round(microbatch_s, 6),
            "lines_per_s": round(len(lines) / microbatch_s, 1),
            "flushes": last_stats.get("flushes_total"),
            "largest_flush": last_stats.get("largest_flush"),
            "mean_flush_size": round(last_stats.get("mean_flush_size", 0.0), 1),
        },
        "speedup": round(speedup, 2),
        "cores": cores,
        "floor": MIN_SPEEDUP,
        "floor_asserted": floor_asserted,
        "byte_identical": True,
    }
    if not floor_asserted:
        report["skipped"] = (
            f"runner has {cores} core(s) (< {MIN_CORES}); "
            "speedup recorded but not asserted"
        )
    if RESULT_PATH.exists():
        # Keep the front-end sweep's section if it already ran.
        previous = json.loads(RESULT_PATH.read_text())
        if "frontends" in previous:
            report["frontends"] = previous["frontends"]
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("SERVE PERF SMOKE (BENCH_serve.json)", json.dumps(report, indent=2))

    if floor_asserted:
        assert speedup >= MIN_SPEEDUP, (
            f"microbatched serving speedup {speedup:.1f}x below the "
            f"{MIN_SPEEDUP}x floor"
        )


# --------------------------------------------------------- front-end sweep


def _sweep(port, request_bodies, connections):
    """POST every body through ``connections`` persistent keep-alive
    connections; returns (elapsed_s, raw response bytes by request index)."""
    results: list[bytes | None] = [None] * len(request_bodies)
    failures: list[str] = []

    def worker(offset):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            for index in range(offset, len(request_bodies), connections):
                connection.request(
                    "POST",
                    "/v1/tag",
                    body=request_bodies[index],
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = response.read()
                if response.status != 200:
                    failures.append(f"request {index} -> {response.status}")
                    return
                results[index] = payload
        except OSError as error:
            # A thread that dies silently would leave None slots and a bare
            # assert; surface the connection-level failure instead.
            failures.append(f"connection (offset {offset}): {error!r}")
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, args=(offset,))
        for offset in range(connections)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if failures or any(result is None for result in results):
        raise TransientSweepError(failures[:5] or ["worker left empty slots"])
    return elapsed, results


class TransientSweepError(AssertionError):
    """A sweep attempt failed at the connection level (timeout, reset, or a
    non-200 under load) — retryable noise on oversubscribed runners, not a
    correctness failure."""


def _sweep_retrying(port, request_bodies, connections, attempts=3):
    for attempt in range(attempts):
        try:
            return _sweep(port, request_bodies, connections)
        except TransientSweepError:
            if attempt == attempts - 1:
                raise
    raise AssertionError("unreachable")


def _shed_burst(service, *, clients=16, requests_each=4):
    """Hammer a deliberately tiny admission gate; returns (served, shed)."""
    admission = AdmissionController(
        AdmissionPolicy(max_inflight=1, queue_depth=0, deadline_s=30.0)
    )
    body = json.dumps(
        {"section": "ingredient", "lines": ["2 cups sugar"] * LINES_PER_REQUEST}
    ).encode("utf-8")
    counts = {"served": 0, "shed": 0}
    lock = threading.Lock()
    with start_in_thread(service, admission=admission) as handle:
        barrier = threading.Barrier(clients)

        def worker():
            connection = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=60
            )
            try:
                barrier.wait(timeout=30)
                for _ in range(requests_each):
                    connection.request(
                        "POST",
                        "/v1/tag",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    response.read()
                    with lock:
                        if response.status == 200:
                            counts["served"] += 1
                        elif response.status == 429:
                            counts["shed"] += 1
            finally:
                connection.close()

        threads = [threading.Thread(target=worker) for _ in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return counts["served"], counts["shed"]


def test_bench_serve_frontends(modeler, serving_corpus, tmp_path_factory):
    """Threaded vs async front end, end to end, at 1/8/32 connections.

    Both servers run over the *same* TaggingService (same registry, same
    microbatch queues), so any throughput difference is the front end's:
    thread-per-connection dispatch vs one event loop with admission
    control.  Responses must be byte-identical across servers.
    """
    bundle = tmp_path_factory.mktemp("bench-serve") / "bundle.json"
    modeler.save_bundle(bundle)
    registry = ModelRegistry()
    registry.load(bundle)

    pool = [" ".join(tokens) for tokens in serving_corpus]
    request_bodies = [
        json.dumps(
            {
                "section": "ingredient",
                "lines": pool[
                    (index * LINES_PER_REQUEST) % len(pool):
                ][:LINES_PER_REQUEST],
            }
        ).encode("utf-8")
        for index in range(SWEEP_REQUESTS)
    ]

    sweeps: dict[str, dict] = {"threaded": {}, "async": {}}
    baseline: list[bytes] | None = None
    total_lines = SWEEP_REQUESTS * LINES_PER_REQUEST

    with TaggingService(registry, max_delay_s=0.001) as service:
        # ---- threaded front end
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            _sweep_retrying(port, request_bodies, 8)  # warm caches off the clock
            for connections in CONNECTIONS:
                elapsed, results = _sweep_retrying(port, request_bodies, connections)
                sweeps["threaded"][str(connections)] = {
                    "seconds": round(elapsed, 6),
                    "lines_per_s": round(total_lines / elapsed, 1),
                }
                baseline = results
        finally:
            server.shutdown()
            server.server_close()

        # ---- async front end (same service, fresh metrics)
        with start_in_thread(service) as handle:
            _sweep_retrying(handle.port, request_bodies, 8)  # warm-up parity
            for connections in CONNECTIONS:
                elapsed, results = _sweep_retrying(
                    handle.port, request_bodies, connections
                )
                sweeps["async"][str(connections)] = {
                    "seconds": round(elapsed, 6),
                    "lines_per_s": round(total_lines / elapsed, 1),
                }
                assert results == baseline, (
                    "async responses must be byte-identical to the threaded "
                    "server's"
                )
            connection = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=30
            )
            try:
                connection.request("GET", "/stats")
                stats = json.loads(connection.getresponse().read())
            finally:
                connection.close()

        served, shed = _shed_burst(service)

    tag_metrics = stats["server"]["tag"]
    ratio = (
        sweeps["async"]["32"]["lines_per_s"]
        / sweeps["threaded"]["32"]["lines_per_s"]
    )
    cores = os.cpu_count() or 1
    floor_asserted = cores >= MIN_CORES
    report = {
        "requests": SWEEP_REQUESTS,
        "lines_per_request": LINES_PER_REQUEST,
        "throughput": sweeps,
        "async_vs_threaded_at_32": round(ratio, 3),
        "async_latency_p50_ms": tag_metrics["latency"]["p50_ms"],
        "async_latency_p99_ms": tag_metrics["latency"]["p99_ms"],
        "async_queue_wait_p99_ms": tag_metrics["queue_wait"]["p99_ms"],
        "saturation_burst": {"served": served, "shed": shed},
        "byte_identical": True,
        "cores": cores,
        "floor": MIN_ASYNC_RATIO,
        "floor_asserted": floor_asserted,
    }
    if not floor_asserted:
        report["skipped"] = (
            f"runner has {cores} core(s) (< {MIN_CORES}); async/threaded "
            "ratio recorded but not asserted"
        )

    merged = {}
    if RESULT_PATH.exists():
        merged = json.loads(RESULT_PATH.read_text())
    merged["frontends"] = report
    RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    emit("SERVE FRONT-END SWEEP (BENCH_serve.json)", json.dumps(report, indent=2))

    assert shed >= 1, "the saturation burst must shed at least one request"
    assert served >= 1, "the saturation burst must still serve requests"
    if floor_asserted:
        assert ratio >= MIN_ASYNC_RATIO, (
            f"async throughput ratio {ratio:.2f}x at 32 connections fell below "
            f"the {MIN_ASYNC_RATIO}x floor"
        )
