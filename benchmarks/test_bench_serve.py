"""Serving perf smoke: microbatched queue vs per-request decoding.

Simulates the two serving architectures on a >=1k-line corpus with the same
trained ingredient NER model:

* **per-request**: each line is feature-extracted and Viterbi-decoded on its
  own, the way a naive HTTP handler would do it (no shared state between
  requests);
* **microbatched**: every line goes through a :class:`MicrobatchQueue` over
  ``NerModel.tag_batch``, so concurrent requests coalesce into a handful of
  length-bucketed batch decodes.

Both paths must produce byte-identical tags (and match ``tag_batch``
itself); the measured wall times, throughputs and flush counters are written
to ``benchmarks/BENCH_serve.json``.  The run fails if the microbatched
throughput is less than 3x the per-request loop.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve import MicrobatchQueue

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_serve.json"
MIN_SPEEDUP = 3.0
MIN_LINES = 1000
REPEATS = 3


def _best_time(function, *, setup=None):
    best = np.inf
    result = None
    for _ in range(REPEATS):
        if setup is not None:
            setup()
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.fixture(scope="module")
def serving_corpus(corpora):
    """Every ingredient line of the small corpus, as serving requests."""
    lines = [list(phrase.tokens) for phrase in corpora.combined.ingredient_phrases()]
    assert len(lines) >= MIN_LINES, "serving benchmark needs a >=1k-line corpus"
    return lines


def test_bench_serve(modeler, serving_corpus):
    model = modeler.components.ingredient_pipeline.ner
    lines = serving_corpus

    # Reference output: the engine's own batched decode.
    model.session.clear()
    expected = model.tag_batch(lines)

    # ---- (a) per-request decode loop: one kernel call per line, no caches.
    def per_request():
        return [
            model.model.predict(model.feature_extractor.sequence_features(tokens))
            for tokens in lines
        ]

    per_request_s, sequential = _best_time(per_request)
    assert sequential == expected, "per-request decoding must match tag_batch"

    # ---- (b) microbatched queue over tag_batch, cold caches every repeat.
    last_stats = {}

    def microbatched():
        with MicrobatchQueue(
            model.tag_batch,
            max_batch=512,
            max_tokens=32768,
            max_delay_s=0.001,
            name="bench",
        ) as queue:
            results = queue.tag_many(lines, timeout=120)
        last_stats.update(queue.stats())
        return results

    microbatch_s, batched = _best_time(microbatched, setup=model.session.clear)
    assert batched == expected, "microbatched serving must be byte-identical to tag_batch"

    speedup = per_request_s / microbatch_s
    report = {
        "lines": len(lines),
        "unique_lines": len({tuple(tokens) for tokens in lines}),
        "per_request": {
            "seconds": round(per_request_s, 6),
            "lines_per_s": round(len(lines) / per_request_s, 1),
        },
        "microbatch": {
            "seconds": round(microbatch_s, 6),
            "lines_per_s": round(len(lines) / microbatch_s, 1),
            "flushes": last_stats.get("flushes_total"),
            "largest_flush": last_stats.get("largest_flush"),
            "mean_flush_size": round(last_stats.get("mean_flush_size", 0.0), 1),
        },
        "speedup": round(speedup, 2),
        "byte_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("SERVE PERF SMOKE (BENCH_serve.json)", json.dumps(report, indent=2))

    assert speedup >= MIN_SPEEDUP, (
        f"microbatched serving speedup {speedup:.1f}x below the {MIN_SPEEDUP}x floor"
    )
