"""Benchmark: Section II.F -- 5-fold cross-validation of the ingredient NER."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import crossval


def test_crossval_five_fold(benchmark, corpora):
    """Time the full 5-fold protocol on the cluster-stratified annotated sample."""
    result = benchmark.pedantic(
        lambda: crossval.run(corpora=corpora, seed=BENCH_SEED, n_folds=5),
        rounds=1,
        iterations=1,
    )
    emit("5-fold cross-validation", crossval.render(result))

    assert result.result.n_folds == 5
    # The paper's models land around 0.95; the reproduction stays in a band
    # consistent with its slightly noisier simulated annotations.
    assert result.result.mean_f1 > 0.85
    # Folds agree with each other (validation is stable).
    assert result.result.std_f1 < 0.08
