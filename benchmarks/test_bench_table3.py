"""Benchmark: Table III -- cluster-stratified training/testing set construction."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import table3


def test_table3_dataset_sizes(benchmark, corpora):
    """Time POS vectorisation + K-Means + stratified sampling for both corpora."""
    result = benchmark.pedantic(
        lambda: table3.run(corpora=corpora, seed=BENCH_SEED), rounds=1, iterations=1
    )
    emit("Table III", table3.render(result))

    allrecipes = result.sizes["AllRecipes"]
    foodcom = result.sizes["FOOD.com"]
    both = result.sizes["BOTH"]
    # Shape checks mirroring the paper's table: the combined set is the sum of
    # the per-corpus sets and every training set dominates its test set.
    assert both[0] == allrecipes[0] + foodcom[0]
    assert both[1] == allrecipes[1] + foodcom[1]
    for train, test in result.sizes.values():
        assert train > test > 0
