"""Perf-smoke benchmark for the vectorized engine (writes BENCH_engine.json).

Times the two hot paths the engine rewrote against faithful re-implementations
of the seed's per-token Python loops, on the same simulated corpus:

* one L-BFGS objective/gradient evaluation of the CRF (training inner loop);
* corpus-scale Viterbi decode (``predict_batch`` feeding ``model_corpus``).

The measured wall times and speedups are written to
``benchmarks/BENCH_engine.json`` so the perf trajectory is tracked across
PRs.  The run fails if either speedup drops below 3x or if the engine and
seed paths disagree on a single prediction.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest
from scipy.special import logsumexp

from repro.engine import EncodedDataset
from repro.ner.crf import LinearChainCRF
from repro.ner.features import IngredientFeatureExtractor
from repro.ner.structured_perceptron import StructuredPerceptron

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_engine.json"
MIN_SPEEDUP = 3.0
REPEATS = 3


def _best_time(function, *args):
    best = np.inf
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = function(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


# --------------------------------------------------------- seed re-implementations


def _seed_objective(crf, params, feature_sequences, label_sequences):
    """The seed CRF objective: per-token emission loops, per-timestep xi."""
    n_features = len(crf.feature_vocab)
    n_labels = len(crf.label_vocab)
    emission, transition, start, end = crf._split(params, n_features, n_labels)
    grad_emission = np.zeros_like(emission)
    grad_transition = np.zeros_like(transition)
    grad_start = np.zeros_like(start)
    grad_end = np.zeros_like(end)
    nll = 0.0

    encoded = []
    for sentence, labels in zip(feature_sequences, label_sequences):
        if len(sentence) == 0:
            continue
        token_feature_indices = [
            np.array(
                sorted(
                    {
                        index
                        for feature in token_features
                        if (index := crf.feature_vocab.get(feature)) is not None
                    }
                ),
                dtype=np.int64,
            )
            for token_features in sentence
        ]
        label_indices = np.array(
            [crf.label_vocab.index(label) for label in labels], dtype=np.int64
        )
        encoded.append((token_feature_indices, label_indices))

    for token_feature_indices, label_indices in encoded:
        length = len(token_feature_indices)
        emissions = np.zeros((length, n_labels))
        for t, indices in enumerate(token_feature_indices):
            if indices.size:
                emissions[t] = emission[indices].sum(axis=0)
        alpha = np.empty((length, n_labels))
        alpha[0] = start + emissions[0]
        for t in range(1, length):
            alpha[t] = logsumexp(alpha[t - 1][:, None] + transition, axis=0) + emissions[t]
        beta = np.empty((length, n_labels))
        beta[-1] = end
        for t in range(length - 2, -1, -1):
            beta[t] = logsumexp(transition + (emissions[t + 1] + beta[t + 1])[None, :], axis=1)
        log_z = logsumexp(alpha[-1] + end)

        gold = start[label_indices[0]] + emissions[0, label_indices[0]]
        for t in range(1, length):
            gold += transition[label_indices[t - 1], label_indices[t]]
            gold += emissions[t, label_indices[t]]
        gold += end[label_indices[-1]]
        nll += log_z - gold

        gamma = np.exp(alpha + beta - log_z)
        for t, indices in enumerate(token_feature_indices):
            if indices.size:
                grad_emission[indices] += gamma[t]
                grad_emission[indices, label_indices[t]] -= 1.0
        grad_start += gamma[0]
        grad_start[label_indices[0]] -= 1.0
        grad_end += gamma[-1]
        grad_end[label_indices[-1]] -= 1.0
        for t in range(1, length):
            pairwise = (
                alpha[t - 1][:, None]
                + transition
                + emissions[t][None, :]
                + beta[t][None, :]
                - log_z
            )
            grad_transition += np.exp(pairwise)
            grad_transition[label_indices[t - 1], label_indices[t]] -= 1.0

    nll += 0.5 * crf.l2 * float(np.dot(params, params))
    gradient = np.concatenate(
        [grad_emission.ravel(), grad_transition.ravel(), grad_start, grad_end]
    )
    gradient += crf.l2 * params
    return nll, gradient


def _seed_decode(model, feature_sequences):
    """The seed decode loop: re-encode and Viterbi one sentence at a time."""
    results = []
    for feature_sequence in feature_sequences:
        if len(feature_sequence) == 0:
            results.append([])
            continue
        n_labels = len(model.label_vocab)
        token_feature_indices = [
            np.array(
                sorted(
                    {
                        index
                        for feature in token_features
                        if (index := model.feature_vocab.get(feature)) is not None
                    }
                ),
                dtype=np.int64,
            )
            for token_features in feature_sequence
        ]
        emissions = np.zeros((len(token_feature_indices), n_labels))
        for t, indices in enumerate(token_feature_indices):
            if indices.size:
                emissions[t] = model.emission_weights[indices].sum(axis=0)
        path = model._viterbi(
            emissions, model.transition_weights, model.start_weights, model.end_weights
        )
        results.append([model.label_vocab.symbol(int(index)) for index in path])
    return results


# ------------------------------------------------------------------- benchmark


@pytest.fixture(scope="module")
def labelled_sentences(corpora):
    extractor = IngredientFeatureExtractor()
    phrases = corpora.combined.ingredient_phrases()[:1000]
    features = [extractor.sequence_features(list(phrase.tokens)) for phrase in phrases]
    labels = [list(phrase.ner_tags) for phrase in phrases]
    return features, labels


def test_bench_engine(labelled_sentences):
    features, labels = labelled_sentences

    # ---- (a) CRF objective evaluation: engine vs seed loops.
    crf = LinearChainCRF()
    crf._build_vocabularies(features, labels)
    dataset = EncodedDataset.build(crf.encoder, crf.label_vocab, features, labels)
    n_features = len(crf.feature_vocab)
    n_labels = len(crf.label_vocab)
    rng = np.random.default_rng(0)
    params = rng.normal(
        scale=0.05, size=n_features * n_labels + n_labels * n_labels + 2 * n_labels
    )
    engine_fit_s, (value, gradient) = _best_time(
        crf._objective, params, dataset, n_features, n_labels
    )
    seed_fit_s, (seed_value, seed_gradient) = _best_time(
        _seed_objective, crf, params, features, labels
    )
    np.testing.assert_allclose(value, seed_value, rtol=1e-10)
    np.testing.assert_allclose(gradient, seed_gradient, rtol=1e-8, atol=1e-10)
    fit_speedup = seed_fit_s / engine_fit_s

    # ---- (b) corpus-scale decode: batched engine vs seed per-line loop.
    model = StructuredPerceptron(iterations=2, seed=0).fit(features, labels)
    engine_decode_s, batched = _best_time(model.predict_batch, features)
    seed_decode_s, sequential = _best_time(_seed_decode, model, features)
    assert batched == sequential, "batched decode must match the seed predictions"
    decode_speedup = seed_decode_s / engine_decode_s

    report = {
        "corpus_sentences": len(features),
        "n_features": n_features,
        "n_labels": n_labels,
        "fit_objective": {
            "seed_s": round(seed_fit_s, 6),
            "engine_s": round(engine_fit_s, 6),
            "speedup": round(fit_speedup, 2),
        },
        "corpus_decode": {
            "seed_s": round(seed_decode_s, 6),
            "engine_s": round(engine_decode_s, 6),
            "speedup": round(decode_speedup, 2),
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit(
        "ENGINE PERF SMOKE (BENCH_engine.json)",
        json.dumps(report, indent=2),
    )

    assert fit_speedup >= MIN_SPEEDUP, (
        f"CRF objective speedup {fit_speedup:.1f}x below the {MIN_SPEEDUP}x floor"
    )
    assert decode_speedup >= MIN_SPEEDUP, (
        f"corpus decode speedup {decode_speedup:.1f}x below the {MIN_SPEEDUP}x floor"
    )
