"""Benchmark: Fig. 3 -- dependency parsing of instruction sentences."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import fig3
from repro.parsing.rules import RecipeDependencyParser


def test_fig3_dependency_parsing(benchmark, corpora):
    """Time rule parsing, transition-parser training and the agreement check."""
    result = benchmark.pedantic(
        lambda: fig3.run(corpora=corpora, seed=BENCH_SEED), rounds=1, iterations=1
    )
    emit("Fig. 3", fig3.render(result))

    tree = result.example_tree
    tokens = list(tree.tokens)
    # The arcs the paper's figure shows for "Bring the water ... in a pot":
    bring, water, pot = tokens.index("Bring"), tokens.index("water"), tokens.index("pot")
    assert tree.label_of(bring) == "ROOT"
    assert tree.head_of(water) == bring and tree.label_of(water) == "dobj"
    assert tree.label_of(pot) == "pobj"
    assert result.attachment_agreement > 0.75
    assert result.verbs_with_objects > 0.8


def test_fig3_rule_parser_throughput(benchmark, corpora):
    """Microbenchmark: steps parsed per second by the rule-based parser."""
    parser = RecipeDependencyParser()
    steps = corpora.combined.instruction_steps()[:200]

    def parse_all():
        return [parser.parse(list(step.tokens), list(step.pos_tags)) for step in steps]

    trees = benchmark(parse_all)
    assert len(trees) == len(steps)
