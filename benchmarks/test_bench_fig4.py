"""Benchmark: Fig. 4 -- instruction NER inference over a recipe's instructions."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import fig4


def test_fig4_instruction_tagging(benchmark, corpora):
    """Time the Fig. 4 experiment and check the tagging quality on the demo recipe."""
    result = benchmark.pedantic(
        lambda: fig4.run(corpora=corpora, seed=BENCH_SEED), rounds=1, iterations=1
    )
    emit("Fig. 4", fig4.render(result))

    assert result.tagged_steps
    assert result.entity_f1 > 0.75
    # The demo recipe must contain recognised processes and utensils/ingredients,
    # otherwise the figure would be empty.
    tags = {tag for step in result.tagged_steps for _, tag in step}
    assert "PROCESS" in tags
    assert {"INGREDIENT", "UTENSIL"} & tags


def test_fig4_tagging_throughput(benchmark, corpora, modeler):
    """Microbenchmark: instruction steps tagged per second by the fitted pipeline."""
    pipeline = modeler.components.instruction_pipeline
    steps = corpora.combined.instruction_steps()[:150]

    def tag_all():
        return [pipeline.tag_tokens(list(step.tokens)) for step in steps]

    tagged = benchmark(tag_all)
    assert len(tagged) == len(steps)
