"""Benchmark: design-choice ablations (DESIGN.md section 5)."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import ablations


def test_ablation_sampling_strategy(benchmark, corpora):
    """Cluster-stratified vs uniform random training-set selection."""
    result = benchmark.pedantic(
        lambda: ablations.run_sampling_ablation(corpora=corpora, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    emit("Ablation 1: sampling strategy", ablations.render_sampling(result))
    assert result.stratified_f1 >= result.random_f1 - 0.05


def test_ablation_model_family(benchmark, corpora):
    """CRF vs structured perceptron vs HMM on the same split."""
    result = benchmark.pedantic(
        lambda: ablations.run_model_family_ablation(corpora=corpora, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    emit("Ablation 2: model family", ablations.render_model_family(result))
    # Discriminative sequence models clearly beat the generative baseline.
    assert result.f1_by_family["crf"] > result.f1_by_family["hmm"]
    assert result.f1_by_family["perceptron"] > result.f1_by_family["hmm"]
    # CRF and perceptron are of comparable quality (same feature set).
    assert abs(result.f1_by_family["crf"] - result.f1_by_family["perceptron"]) < 0.08


def test_ablation_dictionary_threshold(benchmark, corpora):
    """Sweep of the technique-dictionary frequency threshold (paper uses 47)."""
    result = benchmark.pedantic(
        lambda: ablations.run_threshold_ablation(corpora=corpora, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    emit("Ablation 3: dictionary threshold", ablations.render_threshold(result))
    sizes = [row["dictionary_size"] for row in result.rows]
    recalls = [row["recall"] for row in result.rows]
    assert sizes == sorted(sizes, reverse=True)
    assert recalls[0] >= recalls[-1]


def test_ablation_cluster_count(benchmark, corpora):
    """Downstream NER F1 as a function of the selection-stage cluster count."""
    result = benchmark.pedantic(
        lambda: ablations.run_cluster_count_ablation(corpora=corpora, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    emit("Ablation 4: cluster count", ablations.render_cluster_count(result))
    assert set(result.f1_by_k) == {2, 5, 10, 23, 30}
    # Inertia decreases monotonically with k.
    inertia = [result.inertia_by_k[k] for k in sorted(result.inertia_by_k)]
    assert all(a >= b - 1e-9 for a, b in zip(inertia, inertia[1:]))


def test_ablation_preprocessing(benchmark, corpora):
    """Unique ingredient names with vs without pre-processing of NAME spans."""
    result = benchmark.pedantic(
        lambda: ablations.run_preprocessing_ablation(corpora=corpora, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    emit("Ablation 5: pre-processing", ablations.render_preprocessing(result))
    # Pre-processing folds surface variants, reducing the distinct-name count.
    assert result.names_with_preprocessing < result.names_without_preprocessing
    assert result.compression_ratio < 1.0
