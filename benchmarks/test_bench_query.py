"""Ranked-retrieval perf smoke: BM25 top-k, galloping algebra, shard fan-out.

Three floors over the same corpus-scale structured JSONL the index bench
uses (model-structured recipes replicated with distinct ids):

* **ranked top-k vs brute-scored scan** — ``QueryEngine.search(rank=True)``
  over the v2 artifact (df/doc-stats from header metadata, postings decoded
  only for scoring) against :func:`rank_recipes`, which parses every JSONL
  line, extracts entities and scores every match from scratch.  Results
  must be element-wise identical (ids, order, scores to 1e-9) and the
  indexed path must clear a >=10x speedup floor.
* **galloping vs linear set algebra** — adversarially skewed sorted lists
  (a few hundred candidates against a dense run of hundreds of thousands):
  the exponential-probe kernels must produce identical output and clear a
  >=2x floor over the linear merge.
* **shard-parallel query evaluation** — :func:`parallel_ranked_search` over
  a 4-shard manifest with a process pool vs the same batch evaluated
  serially, >=2x floor.  Only asserted on runners with >=4 cores; below
  that the report records a guarded skip (pool spin-up would dominate).

Results land in ``benchmarks/BENCH_query.json``; floors whose baseline is
too fast to time reliably are recorded but not asserted.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.corpus import iter_structured_jsonl, write_structured_jsonl
from repro.index import (
    IndexBuilder,
    QueryEngine,
    RecipeIndex,
    build_sharded_index,
    parallel_ranked_search,
    rank_recipes,
)
from repro.index.query import intersect_galloping, intersect_sorted

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_query.json"
#: Ranked top-k vs parsing + scoring the whole corpus per query.
MIN_RANKED_SPEEDUP = 10.0
MIN_MEASURABLE_SCAN_S = 0.2
#: Galloping vs linear intersection on skewed lists.
MIN_GALLOP_SPEEDUP = 2.0
MIN_MEASURABLE_LINEAR_S = 0.05
#: Shard-parallel batch vs serial; only meaningful with real cores.
MIN_PARALLEL_SPEEDUP = 2.0
MIN_PARALLEL_CORES = 4
PARALLEL_WORKERS = 4
NUM_SHARDS = 4

STRUCTURE_HEAD = 40
COPIES = 40
TOP_K = 10
RANKED_REPS = 25
GALLOP_REPS = 40


@pytest.fixture(scope="module")
def structured_corpus_path(modeler, corpora, tmp_path_factory):
    """Corpus-scale structured JSONL: model output replicated with fresh ids."""
    structured = [
        modeler.model_recipe(recipe)
        for recipe in corpora.combined.recipes[:STRUCTURE_HEAD]
    ]
    documents = (
        dataclasses.replace(recipe, recipe_id=f"{recipe.recipe_id}-c{copy}")
        for copy in range(COPIES)
        for recipe in structured
    )
    path = tmp_path_factory.mktemp("bench-query") / "structured.jsonl"
    write_structured_jsonl(path, documents)
    return path


def _ranked_queries(index: RecipeIndex) -> list[str]:
    """Scoring-heavy queries over the corpus's own most common entities."""

    def top(field: str, rank: int = 0) -> str:
        terms = sorted(
            index.terms(field), key=lambda term: -index.posting_count(field, term)
        )
        term = terms[min(rank, len(terms) - 1)]
        return f'{field}:"{term}"' if " " in term else f"{field}:{term}"

    ingredient, other = top("ingredient"), top("ingredient", rank=1)
    process, utensil = top("process"), top("utensil")
    return [
        ingredient,
        f"{ingredient} OR {other} OR {process}",
        f"({ingredient} OR {other}) AND {utensil}",
        f"{process} AND NOT {other}",
    ]


def _assert_ranked_equal(indexed, oracle, query):
    indexed_total, indexed_matches = indexed
    oracle_total, oracle_matches = oracle
    assert indexed_total == oracle_total, f"total mismatch for {query!r}"
    assert [m.doc_id for m in indexed_matches] == [
        m.doc_id for m in oracle_matches
    ], f"ranked order mismatch for {query!r}"
    for ours, theirs in zip(indexed_matches, oracle_matches):
        assert abs(ours.score - theirs.score) <= 1e-9, f"score drift for {query!r}"


def test_bench_ranked_query(structured_corpus_path, tmp_path):
    artifact = tmp_path / "index.bin"
    IndexBuilder.build_from_jsonl(structured_corpus_path).save(artifact, kind="v2")
    engine = QueryEngine(RecipeIndex.load(artifact))
    manifest = tmp_path / "manifest.json"
    build_sharded_index(
        structured_corpus_path, manifest, num_shards=NUM_SHARDS, format="v2"
    )

    # ---- ranked top-k: indexed vs brute-scored scan ------------------------
    queries = _ranked_queries(engine._index)
    rows = []
    scan_total_s = 0.0
    ranked_total_s = 0.0
    for query in queries:
        started = time.perf_counter()
        oracle = rank_recipes(
            iter_structured_jsonl(structured_corpus_path), query, limit=TOP_K
        )
        scan_s = time.perf_counter() - started
        indexed = engine.search(query, limit=TOP_K, rank=True)
        _assert_ranked_equal(indexed, oracle, query)

        started = time.perf_counter()
        for _ in range(RANKED_REPS):
            engine.search(query, limit=TOP_K, rank=True)
        ranked_s = (time.perf_counter() - started) / RANKED_REPS

        scan_total_s += scan_s
        ranked_total_s += ranked_s
        rows.append(
            {
                "query": query,
                "total": indexed[0],
                "scan_s": round(scan_s, 4),
                "ranked_s": round(ranked_s, 6),
                "speedup": round(scan_s / ranked_s, 1) if ranked_s else None,
            }
        )
    ranked_speedup = scan_total_s / ranked_total_s if ranked_total_s else float("inf")
    ranked_asserted = scan_total_s >= MIN_MEASURABLE_SCAN_S

    # ---- galloping vs linear intersection on adversarial skew --------------
    rng = random.Random(17)
    large = list(range(400_000))
    small = sorted(rng.sample(large, 300))
    assert intersect_galloping(small, large) == intersect_sorted(small, large)

    started = time.perf_counter()
    for _ in range(GALLOP_REPS):
        intersect_sorted(small, large)
    linear_s = (time.perf_counter() - started) / GALLOP_REPS
    started = time.perf_counter()
    for _ in range(GALLOP_REPS):
        intersect_galloping(small, large)
    gallop_s = (time.perf_counter() - started) / GALLOP_REPS
    gallop_speedup = linear_s / gallop_s if gallop_s else float("inf")
    gallop_asserted = linear_s * GALLOP_REPS >= MIN_MEASURABLE_LINEAR_S

    # ---- shard-parallel batch evaluation vs serial -------------------------
    cores = os.cpu_count() or 1
    batch = queries * 4
    parallel_section: dict = {
        "cores": cores,
        "workers": PARALLEL_WORKERS,
        "shards": NUM_SHARDS,
        "floor": MIN_PARALLEL_SPEEDUP,
        "floor_asserted": False,
    }
    if cores >= MIN_PARALLEL_CORES:
        serial = parallel_ranked_search(manifest, batch, k=TOP_K, workers=1)
        started = time.perf_counter()
        serial = parallel_ranked_search(manifest, batch, k=TOP_K, workers=1)
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        pooled = parallel_ranked_search(
            manifest, batch, k=TOP_K, workers=PARALLEL_WORKERS
        )
        parallel_s = time.perf_counter() - started
        assert pooled == serial, "process-pool batch diverged from serial"
        parallel_speedup = serial_s / parallel_s if parallel_s else float("inf")
        parallel_section.update(
            {
                "queries": len(batch),
                "serial_s": round(serial_s, 4),
                "parallel_s": round(parallel_s, 4),
                "speedup": round(parallel_speedup, 1),
                "floor_asserted": True,
            }
        )
    else:
        parallel_speedup = None
        parallel_section["skipped"] = (
            f"runner has {cores} core(s); the {MIN_PARALLEL_SPEEDUP}x "
            f"shard-parallel floor needs >={MIN_PARALLEL_CORES} to be "
            "meaningful (pool spin-up would dominate)"
        )

    report = {
        "documents": engine._index.doc_count,
        "top_k": TOP_K,
        "ranked": {
            "queries": rows,
            "identical_to_oracle": True,
            "speedup": round(ranked_speedup, 1),
            "floor": MIN_RANKED_SPEEDUP,
            "floor_asserted": ranked_asserted,
        },
        "galloping": {
            "small": len(small),
            "large": len(large),
            "linear_s": round(linear_s, 6),
            "gallop_s": round(gallop_s, 6),
            "speedup": round(gallop_speedup, 1),
            "floor": MIN_GALLOP_SPEEDUP,
            "floor_asserted": gallop_asserted,
        },
        "shard_parallel": parallel_section,
    }
    if not ranked_asserted:
        report["ranked"]["skipped"] = (
            f"total brute-scored scan time {scan_total_s:.3f}s is below the "
            f"{MIN_MEASURABLE_SCAN_S}s measurement floor on this runner"
        )
    if not gallop_asserted:
        report["galloping"]["skipped"] = (
            f"linear intersection is too fast to time reliably "
            f"({linear_s:.6f}s per rep) on this runner"
        )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("RANKED QUERY PERF SMOKE (BENCH_query.json)", json.dumps(report, indent=2))

    if ranked_asserted:
        assert ranked_speedup >= MIN_RANKED_SPEEDUP, (
            f"ranked top-{TOP_K} speedup {ranked_speedup:.1f}x is below the "
            f"{MIN_RANKED_SPEEDUP}x floor over a brute-scored scan of "
            f"{engine._index.doc_count} structured recipes"
        )
    if gallop_asserted:
        assert gallop_speedup >= MIN_GALLOP_SPEEDUP, (
            f"galloping intersection speedup {gallop_speedup:.1f}x is below "
            f"the {MIN_GALLOP_SPEEDUP}x floor on a "
            f"{len(small)}-vs-{len(large)} skew"
        )
    if parallel_section["floor_asserted"]:
        assert parallel_speedup >= MIN_PARALLEL_SPEEDUP, (
            f"shard-parallel batch speedup {parallel_speedup:.1f}x is below "
            f"the {MIN_PARALLEL_SPEEDUP}x floor with {PARALLEL_WORKERS} "
            f"workers on {cores} cores"
        )
