"""Benchmark: Table V -- instruction-section NER evaluation (processes, utensils)."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import table5


def test_table5_instruction_ner(benchmark, corpora):
    """Time instruction NER training + dictionary building + evaluation."""
    result = benchmark.pedantic(
        lambda: table5.run(corpora=corpora, seed=BENCH_SEED), rounds=1, iterations=1
    )
    emit("Table V", table5.render(result))

    process_scores = result.scores["PROCESS"]
    utensil_scores = result.scores["UTENSIL"]
    # The paper reports F1 = 0.88 (processes) and 0.90 (utensils); the
    # reproduction lands in the same band.
    assert 0.80 <= process_scores[2] <= 1.0
    assert 0.80 <= utensil_scores[2] <= 1.0
    # Both entity types are extracted with balanced precision/recall.
    for precision, recall, _ in result.scores.values():
        assert precision > 0.75
        assert recall > 0.75
