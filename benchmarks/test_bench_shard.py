"""Sharded index perf smoke: parallel shard builds vs the serial path.

Builds a corpus-scale structured JSONL (model-structured recipes replicated
with distinct ids, so the doc-id hash spreads them over every shard), then
builds the same ``N``-shard index twice through ``build_sharded_index``:

* **serial** — ``workers=1``: the shard tasks run one after another in
  process (the deterministic reference);
* **parallel** — ``workers=N``: the same self-contained tasks spread over a
  process pool via the corpus executor's ``ordered_parallel_map``.

Both builds must produce payload-identical shards, the loaded sharded index
must answer representative queries element-wise identically to a monolithic
build, and the parallel build must clear a >=2x speedup floor on runners
with at least 4 cores — that concurrency is the entire point of partitioning
the build.  Incremental-update and compaction timings are recorded alongside
for the perf trajectory.  Results land in ``benchmarks/BENCH_shard.json``;
small runners record a guarded skip for the floor instead of failing.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path

import pytest

from repro.corpus import write_structured_jsonl
from repro.index import (
    IndexBuilder,
    QueryEngine,
    ShardedRecipeIndex,
    add_jsonl,
    build_sharded_index,
    merge_shards,
)

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_shard.json"
MIN_SPEEDUP = 2.0
NUM_SHARDS = 4
WORKERS = 4
MIN_CORES = 4
#: Recipes structured with the fitted model; the corpus is COPIES replicas.
STRUCTURE_HEAD = 40
COPIES = 50
#: Below this much serial build time the ratio is noise: record, don't assert.
MIN_MEASURABLE_SERIAL_S = 0.5


@pytest.fixture(scope="module")
def structured_corpus_path(modeler, corpora, tmp_path_factory):
    """Corpus-scale structured JSONL: model output replicated with fresh ids."""
    structured = [
        modeler.model_recipe(recipe)
        for recipe in corpora.combined.recipes[:STRUCTURE_HEAD]
    ]
    documents = (
        dataclasses.replace(recipe, recipe_id=f"{recipe.recipe_id}-c{copy}")
        for copy in range(COPIES)
        for recipe in structured
    )
    path = tmp_path_factory.mktemp("bench-shard") / "structured.jsonl"
    write_structured_jsonl(path, documents)
    return path


def _probe_queries(index) -> list[str]:
    def top(field: str, rank: int = 0) -> str:
        terms = sorted(
            index.terms(field),
            key=lambda term: -len(index.postings(field, term)),
        )
        term = terms[min(rank, len(terms) - 1)]
        return f'{field}:"{term}"' if " " in term else f"{field}:{term}"

    ingredient, other = top("ingredient"), top("ingredient", rank=1)
    process = top("process")
    return [
        ingredient,
        f"{ingredient} AND {process}",
        f"({ingredient} OR {other}) AND NOT {process}",
    ]


def test_bench_shard(structured_corpus_path, tmp_path):
    # ---- the serial reference build (same tasks, one after another).
    started = time.perf_counter()
    build_sharded_index(
        structured_corpus_path,
        tmp_path / "serial.json",
        num_shards=NUM_SHARDS,
        workers=1,
    )
    serial_s = time.perf_counter() - started

    # ---- the parallel build of the same shards.
    started = time.perf_counter()
    build_sharded_index(
        structured_corpus_path,
        tmp_path / "parallel.json",
        num_shards=NUM_SHARDS,
        workers=WORKERS,
    )
    parallel_s = time.perf_counter() - started

    # ---- equivalence: parallel == serial, shard by shard ...
    serial_index = ShardedRecipeIndex.load(tmp_path / "serial.json")
    parallel_index = ShardedRecipeIndex.load(tmp_path / "parallel.json")
    for left, right in zip(serial_index.shards, parallel_index.shards):
        left_payload, right_payload = left.to_payload(), right.to_payload()
        assert left_payload["docs"] == right_payload["docs"]
        assert left_payload["postings"] == right_payload["postings"]

    # ---- ... and sharded == monolithic on representative queries.
    monolithic = QueryEngine(IndexBuilder.build_from_jsonl(structured_corpus_path))
    sharded = QueryEngine(parallel_index)
    queries = _probe_queries(monolithic.index)
    for query in queries:
        assert sharded.execute(query) == monolithic.execute(query), (
            f"sharded vs monolithic mismatch for {query!r}"
        )

    # ---- incremental update + compaction timings (recorded, not asserted).
    started = time.perf_counter()
    add_jsonl(tmp_path / "parallel.json", structured_corpus_path)
    update_s = time.perf_counter() - started
    started = time.perf_counter()
    merge_shards(
        ShardedRecipeIndex.load(tmp_path / "parallel.json"),
        num_shards=NUM_SHARDS,
        manifest_path=tmp_path / "parallel.json",
    )
    merge_s = time.perf_counter() - started

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    cores = os.cpu_count() or 1
    floor_asserted = cores >= MIN_CORES and serial_s >= MIN_MEASURABLE_SERIAL_S
    report = {
        "documents": serial_index.doc_count,
        "num_shards": NUM_SHARDS,
        "workers": WORKERS,
        "cores": cores,
        "serial_build_s": round(serial_s, 3),
        "parallel_build_s": round(parallel_s, 3),
        "update_s": round(update_s, 3),
        "merge_s": round(merge_s, 3),
        "queries": queries,
        "identical_to_serial_and_monolithic": True,
        "speedup": round(speedup, 2),
        "floor": MIN_SPEEDUP,
        "floor_asserted": floor_asserted,
    }
    if not floor_asserted:
        report["skipped"] = (
            f"runner has {cores} cores and the serial build took {serial_s:.3f}s "
            f"(need >= {MIN_CORES} cores and >= {MIN_MEASURABLE_SERIAL_S}s to "
            "assert the floor); speedup recorded but not asserted"
        )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("SHARD PERF SMOKE (BENCH_shard.json)", json.dumps(report, indent=2))

    if floor_asserted:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel shard build speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP}x floor ({NUM_SHARDS} shards, {WORKERS} workers, "
            f"{serial_index.doc_count} docs)"
        )
