"""Benchmark: conclusion statistics (unique names, relations per instruction)."""

from benchmarks.conftest import BENCH_SEED, emit
from repro.experiments import conclusions


def test_conclusions_corpus_statistics(benchmark, corpora):
    """Time the full-corpus structuring pass behind the paper's closing numbers."""
    result = benchmark.pedantic(
        lambda: conclusions.run(corpora=corpora, seed=BENCH_SEED, max_recipes=60),
        rounds=1,
        iterations=1,
    )
    emit("Conclusion statistics", conclusions.render(result))

    # Shape checks: aliases keep the raw unique-name count above the merged
    # count, and the per-instruction relation count is both sizeable and
    # highly variable -- the paper's argument for many-to-many relations
    # (mean 6.164, std 5.70 on the full RecipeDB).
    assert result.unique_ingredient_names >= result.unique_names_after_alias_merge
    assert result.mean_relations_per_instruction > 1.5
    assert result.std_relations_per_instruction > 0.3 * result.mean_relations_per_instruction
    assert result.max_relations_per_instruction >= 6
    assert result.instruction_steps > 0
