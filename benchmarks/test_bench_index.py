"""Index query perf smoke: posting-list queries vs brute-force JSONL scans.

Builds a corpus-scale structured JSONL (model-structured recipes replicated
with distinct ids), indexes it once, then answers a set of representative
entity queries two ways:

* **brute force** — ``scan_structured_jsonl``: parse every line, evaluate
  the predicate per recipe (what a corpus without an index has to do);
* **indexed** — ``QueryEngine`` over the loaded artifact: sorted
  posting-list intersection/union/difference.

Both paths must return element-wise identical results (ids, titles *and*
matched spans), and the indexed path must clear a >=10x speedup floor —
that gap is the entire point of the subsystem ("precompute once, answer
interactively").  The same index is also saved in the v2 compact binary
posting format and must clear two more floors: the artifact >=10x smaller
than v1 (deterministic, always asserted) and the mmap'd lazy open >=20x
faster than the v1 full-parse load (asserted only when the v1 load is slow
enough to time reliably).  Results land in ``benchmarks/BENCH_index.json``;
runners where a baseline is too fast to time record a guarded skip for
that floor instead of failing.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro.corpus import write_structured_jsonl
from repro.index import IndexBuilder, QueryEngine, RecipeIndex, scan_structured_jsonl

from conftest import emit

RESULT_PATH = Path(__file__).parent / "BENCH_index.json"
MIN_SPEEDUP = 10.0
#: Recipes structured with the fitted model; the corpus is COPIES replicas.
STRUCTURE_HEAD = 40
COPIES = 40
#: Indexed queries are microsecond-scale; repeat them to get a stable clock.
INDEX_REPS = 25
#: Below this much total scan time the ratio is noise: record, don't assert.
MIN_MEASURABLE_SCAN_S = 0.2
#: v2 compact binary artifact floors: bytes on disk and cold-open latency.
MIN_SIZE_RATIO = 10.0
MIN_OPEN_RATIO = 20.0
#: Opens are timed best-of-N; below this v1 load time the open ratio is noise.
LOAD_REPS = 5
MIN_MEASURABLE_LOAD_S = 0.02


@pytest.fixture(scope="module")
def structured_corpus_path(modeler, corpora, tmp_path_factory):
    """Corpus-scale structured JSONL: model output replicated with fresh ids."""
    structured = [
        modeler.model_recipe(recipe)
        for recipe in corpora.combined.recipes[:STRUCTURE_HEAD]
    ]
    documents = (
        dataclasses.replace(recipe, recipe_id=f"{recipe.recipe_id}-c{copy}")
        for copy in range(COPIES)
        for recipe in structured
    )
    path = tmp_path_factory.mktemp("bench-index") / "structured.jsonl"
    write_structured_jsonl(path, documents)
    return path


def _bench_queries(index: RecipeIndex) -> list[str]:
    """Representative queries over the corpus's own most common entities."""

    def top(field: str, rank: int = 0) -> str:
        terms = sorted(
            index.terms(field),
            key=lambda term: -len(index.postings(field, term)),
        )
        term = terms[min(rank, len(terms) - 1)]
        return f'{field}:"{term}"' if " " in term else f"{field}:{term}"

    ingredient, other = top("ingredient"), top("ingredient", rank=1)
    process, utensil = top("process"), top("utensil")
    return [
        ingredient,
        f"{ingredient} AND {process}",
        f"{process} AND NOT {other}",
        f"({ingredient} OR {other}) AND {utensil}",
        f"{ingredient} AND {process} AND NOT {utensil}",
    ]


def test_bench_index(structured_corpus_path, tmp_path):
    # ---- build + persist the index once (the amortised cost).
    started = time.perf_counter()
    index = IndexBuilder.build_from_jsonl(structured_corpus_path)
    build_s = time.perf_counter() - started
    artifact = tmp_path / "index.json"
    index.save(artifact)
    started = time.perf_counter()
    engine = QueryEngine(RecipeIndex.load(artifact))
    load_s = time.perf_counter() - started

    # ---- the same index in the v2 compact binary posting format.
    artifact_v2 = tmp_path / "index.bin"
    index.save(artifact_v2, kind="v2")

    def best_open(path: Path) -> float:
        best = float("inf")
        for _ in range(LOAD_REPS):
            started = time.perf_counter()
            RecipeIndex.load(path)
            best = min(best, time.perf_counter() - started)
        return best

    load_v1_s = best_open(artifact)
    load_v2_s = best_open(artifact_v2)
    engine_v2 = QueryEngine(RecipeIndex.load(artifact_v2))

    queries = _bench_queries(engine.index)
    rows = []
    scan_total_s = 0.0
    indexed_total_s = 0.0
    for query in queries:
        # ---- equivalence first: identical ids, titles and matched spans.
        indexed = engine.execute(query)
        started = time.perf_counter()
        scanned = scan_structured_jsonl(structured_corpus_path, query)
        scan_s = time.perf_counter() - started
        assert indexed == scanned, f"indexed vs scanned mismatch for {query!r}"
        assert engine_v2.execute(query) == scanned, (
            f"v2 lazy-decode vs scanned mismatch for {query!r}"
        )

        started = time.perf_counter()
        for _ in range(INDEX_REPS):
            engine.execute(query)
        indexed_s = (time.perf_counter() - started) / INDEX_REPS

        scan_total_s += scan_s
        indexed_total_s += indexed_s
        rows.append(
            {
                "query": query,
                "matches": len(indexed),
                "scan_s": round(scan_s, 4),
                "indexed_s": round(indexed_s, 6),
                "speedup": round(scan_s / indexed_s, 1) if indexed_s else None,
            }
        )

    speedup = scan_total_s / indexed_total_s if indexed_total_s else float("inf")
    floor_asserted = scan_total_s >= MIN_MEASURABLE_SCAN_S
    size_ratio = artifact.stat().st_size / artifact_v2.stat().st_size
    open_ratio = load_v1_s / load_v2_s if load_v2_s else float("inf")
    open_floor_asserted = load_v1_s >= MIN_MEASURABLE_LOAD_S
    report = {
        "documents": engine.index.doc_count,
        "postings": engine.index.stats()["postings"],
        "artifact_bytes": artifact.stat().st_size,
        "artifact_bytes_v2": artifact_v2.stat().st_size,
        "build_s": round(build_s, 3),
        "load_s": round(load_s, 3),
        "load_s_v1_best": round(load_v1_s, 5),
        "load_s_v2": round(load_v2_s, 5),
        "size_ratio_v2": round(size_ratio, 1),
        "size_floor": MIN_SIZE_RATIO,
        "open_ratio_v2": round(open_ratio, 1),
        "open_floor": MIN_OPEN_RATIO,
        "open_floor_asserted": open_floor_asserted,
        "index_reps": INDEX_REPS,
        "queries": rows,
        "identical_to_scan": True,
        "speedup": round(speedup, 1),
        "floor": MIN_SPEEDUP,
        "floor_asserted": floor_asserted,
    }
    if not floor_asserted:
        report["skipped"] = (
            f"total scan time {scan_total_s:.3f}s is below the "
            f"{MIN_MEASURABLE_SCAN_S}s measurement floor on this runner; "
            "speedup recorded but not asserted"
        )
    if not open_floor_asserted:
        report["open_skipped"] = (
            f"v1 load time {load_v1_s:.4f}s is below the "
            f"{MIN_MEASURABLE_LOAD_S}s measurement floor on this runner; "
            "open ratio recorded but not asserted"
        )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    emit("INDEX PERF SMOKE (BENCH_index.json)", json.dumps(report, indent=2))

    # The size ratio is deterministic (same bytes every run): always assert.
    assert size_ratio >= MIN_SIZE_RATIO, (
        f"v2 artifact is only {size_ratio:.1f}x smaller than v1 "
        f"({artifact_v2.stat().st_size} vs {artifact.stat().st_size} bytes); "
        f"floor is {MIN_SIZE_RATIO}x"
    )
    if open_floor_asserted:
        assert open_ratio >= MIN_OPEN_RATIO, (
            f"v2 mmap open is only {open_ratio:.1f}x faster than the v1 "
            f"full-parse load ({load_v2_s:.5f}s vs {load_v1_s:.5f}s); "
            f"floor is {MIN_OPEN_RATIO}x"
        )
    if floor_asserted:
        assert speedup >= MIN_SPEEDUP, (
            f"indexed query speedup {speedup:.1f}x is below the "
            f"{MIN_SPEEDUP}x floor over a brute-force scan of "
            f"{engine.index.doc_count} structured recipes"
        )
