"""Nutritional-profile estimation from mined recipe structure (Section IV).

The paper motivates the ingredient-section model with downstream uses such as
nutritional estimation: once every phrase is reduced to (name, quantity,
unit), a per-100g nutrient table turns a recipe into calories and macros.
This example structures several simulated recipes and ranks them by estimated
energy per serving.

Run with::

    python examples/nutrition_estimation.py
"""

from __future__ import annotations

from repro.applications.nutrition import NutritionEstimator
from repro.core.pipeline import RecipeModeler, RecipeModelerConfig
from repro.data.recipedb import RecipeDB


def main() -> None:
    print("Training the pipeline on a simulated RecipeDB corpus...")
    corpus = RecipeDB.generate(25, 75, seed=11)
    modeler = RecipeModeler(RecipeModelerConfig(seed=11))
    modeler.fit(corpus)

    estimator = NutritionEstimator()
    print("\nEstimating the nutritional profile of 10 recipes...\n")
    ranked = []
    for recipe in corpus.recipes[:10]:
        structured = modeler.model_recipe(recipe)
        nutrition = estimator.estimate(structured, servings=recipe.servings)
        ranked.append((recipe, nutrition))

    ranked.sort(key=lambda pair: pair[1].per_serving.energy_kcal, reverse=True)
    header = f"{'recipe':40s} {'kcal/serv':>10s} {'protein g':>10s} {'fat g':>8s} {'carbs g':>8s} {'coverage':>9s}"
    print(header)
    print("-" * len(header))
    for recipe, nutrition in ranked:
        per_serving = nutrition.per_serving
        print(
            f"{recipe.title[:38]:40s} {per_serving.energy_kcal:10.0f} "
            f"{per_serving.protein_g:10.1f} {per_serving.fat_g:8.1f} "
            f"{per_serving.carbohydrate_g:8.1f} {nutrition.coverage:9.0%}"
        )

    richest, richest_nutrition = ranked[0]
    print(
        f"\nMost energy-dense recipe: {richest.title!r} -- "
        f"{richest_nutrition.per_serving.energy_kcal:.0f} kcal per serving from "
        f"{len(richest_nutrition.resolved_ingredients)} resolved ingredients."
    )


if __name__ == "__main__":
    main()
