"""Quickstart: turn raw recipe text into the paper's structured representation.

The example trains the full pipeline on a small simulated RecipeDB corpus and
then structures a recipe given only its raw text -- the ingredients section
as a list of phrase strings and the instructions section as a list of step
strings -- printing the Table-I-style ingredient records and the
many-to-many relation tuples per instruction step.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.pipeline import RecipeModeler, RecipeModelerConfig
from repro.data.recipedb import RecipeDB

#: A small raw recipe, written the way recipe websites publish them.
INGREDIENT_LINES = [
    "1 sheet frozen puff pastry ( thawed )",
    "6 ounces blue cheese, at room temperature",
    "2-3 medium tomatoes",
    "1/2 teaspoon pepper, freshly ground",
    "1/2 teaspoon fresh thyme, minced",
    "1 teaspoon extra virgin olive oil",
    "salt to taste",
]

INSTRUCTION_LINES = [
    "Preheat the oven to 400 degrees.",
    "Roll the puff pastry on a baking sheet.",
    "Spread the blue cheese over the puff pastry and layer the tomatoes on top.",
    "Season the tomatoes with salt and pepper.",
    "Drizzle the olive oil over the tomatoes and sprinkle with thyme.",
    "Bake in the preheated oven for 25 minutes.",
]


def main() -> None:
    print("Generating a simulated RecipeDB corpus and training the pipeline...")
    corpus = RecipeDB.generate(30, 90, seed=7)
    modeler = RecipeModeler(RecipeModelerConfig(seed=7))
    modeler.fit(corpus)

    print("\nStructuring the raw recipe text...\n")
    structured = modeler.model_text(
        recipe_id="tomato-blue-cheese-tart",
        title="Tomato and Blue Cheese Tart",
        ingredient_lines=INGREDIENT_LINES,
        instruction_lines=INSTRUCTION_LINES,
    )

    print("=== Ingredients section (Table II attributes) ===")
    for record in structured.ingredients:
        attributes = ", ".join(f"{key}={value}" for key, value in record.attributes.items())
        print(f"  {record.phrase!r}\n      -> {attributes}")

    print("\n=== Instructions section (temporal events and relations) ===")
    for event in structured.events:
        print(f"  step {event.step_index + 1}: {event.text}")
        for relation in event.relations:
            print(
                f"      {relation.process} -> ingredients={list(relation.ingredients)}"
                f" utensils={list(relation.utensils)}"
            )

    summary = structured.summary()
    print(
        f"\nSummary: {summary['ingredients']:.0f} ingredient records, "
        f"{summary['events']:.0f} events, {summary['relations']:.0f} relations "
        f"({summary['mean_relations_per_event']:.2f} per event)."
    )


if __name__ == "__main__":
    main()
