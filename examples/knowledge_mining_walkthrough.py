"""Walkthrough of every stage of the knowledge-mining pipeline.

Where the quickstart shows only the public entry point, this example walks
through the individual stages of Sections II and III of the paper on a small
corpus, printing what each stage produces:

1. pre-processing of an ingredient phrase,
2. POS tagging and the 1x36 POS-frequency vector,
3. K-Means clustering of phrase vectors and cluster-stratified sampling,
4. ingredient NER training and tagging,
5. instruction NER, dictionary filtering and dependency parsing,
6. many-to-many relation extraction.

Run with::

    python examples/knowledge_mining_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.core.ingredient_pipeline import IngredientPipeline
from repro.core.instruction_pipeline import InstructionPipeline
from repro.core.relation_extraction import RelationExtractor
from repro.data.recipedb import RecipeDB
from repro.experiments.common import train_pos_tagger
from repro.pos.vectorizer import PosBagOfWordsVectorizer
from repro.text.preprocess import Preprocessor
from repro.text.tokenizer import tokenize

EXAMPLE_PHRASE = "1/2 teaspoon pepper, freshly ground"
EXAMPLE_INSTRUCTION = "Fry the potatoes with olive oil in a large pan over medium heat."


def main() -> None:
    corpus = RecipeDB.generate(20, 40, seed=5)
    phrases = corpus.ingredient_phrases()
    steps = corpus.instruction_steps()
    print(f"Corpus: {len(corpus)} recipes, {len(phrases)} ingredient phrases, {len(steps)} steps")

    # 1. Pre-processing -------------------------------------------------------
    preprocessor = Preprocessor()
    result = preprocessor.run(EXAMPLE_PHRASE)
    print(f"\n1. Pre-processing {EXAMPLE_PHRASE!r}")
    print(f"   tokens after stop-word removal + lemmatisation: {result.tokens}")

    # 2. POS tagging and vectorisation ---------------------------------------
    tagger = train_pos_tagger(corpus, seed=5)
    vectorizer = PosBagOfWordsVectorizer(tagger)
    tagged = tagger.tag(tokenize(EXAMPLE_PHRASE))
    vector = vectorizer.vectorize(EXAMPLE_PHRASE)
    print("\n2. POS tags:", [(t.text, t.tag) for t in tagged])
    print(f"   1x36 vector has {int(vector.sum())} counted tokens, "
          f"{int(np.count_nonzero(vector))} active dimensions")

    # 3. Clustering and sampling ----------------------------------------------
    unique = corpus.unique_phrases()
    vectors = vectorizer.transform_tokenized([p.tokens for p in unique])
    kmeans = KMeans(12, seed=5).fit(vectors)
    sizes = np.bincount(kmeans.labels, minlength=12)
    print(f"\n3. K-Means over {len(unique)} unique phrases: inertia {kmeans.inertia:.1f}, "
          f"cluster sizes {sizes.tolist()}")

    # 4. Ingredient NER --------------------------------------------------------
    ingredient_pipeline = IngredientPipeline(seed=5).train(unique[:300])
    record = ingredient_pipeline.extract_record(EXAMPLE_PHRASE)
    print(f"\n4. Ingredient NER record for {EXAMPLE_PHRASE!r}:")
    for key, value in record.attributes.items():
        print(f"   {key:12s} {value}")

    # 5. Instruction NER + dictionaries ---------------------------------------
    instruction_pipeline = InstructionPipeline(seed=5).train(steps[:150])
    instruction_pipeline.build_dictionaries([list(s.tokens) for s in steps])
    entities = instruction_pipeline.extract(EXAMPLE_INSTRUCTION)
    print(f"\n5. Instruction NER for {EXAMPLE_INSTRUCTION!r}:")
    print(f"   processes:   {list(entities.processes)}")
    print(f"   ingredients: {list(entities.ingredients)}")
    print(f"   utensils:    {list(entities.utensils)}")
    print(f"   technique dictionary size: {len(instruction_pipeline.process_dictionary)}")

    # 6. Relation extraction ---------------------------------------------------
    extractor = RelationExtractor(tagger)
    tree = extractor.parse(list(entities.tokens))
    relations = extractor.extract(list(entities.tokens), list(entities.tags))
    print("\n6. Dependency parse:")
    print("   " + tree.pretty().replace("\n", "\n   "))
    print("   relations:")
    for relation in relations:
        print(f"   {relation.process} -> ingredients={list(relation.ingredients)} "
              f"utensils={list(relation.utensils)}")


if __name__ == "__main__":
    main()
