"""Recipe translation through the structured representation (Section IV).

The paper's first listed application is translating recipes between
languages: once a recipe is reduced to canonical ingredients, quantities,
processes and utensils, translation becomes a lexicon lookup over the
structure rather than free-text machine translation.  This example
structures a raw English recipe and renders it in Spanish and French.

Run with::

    python examples/recipe_translation.py
"""

from __future__ import annotations

from repro.applications.translation import RecipeTranslator
from repro.core.pipeline import RecipeModeler, RecipeModelerConfig
from repro.data.recipedb import RecipeDB

INGREDIENT_LINES = [
    "2 cups all-purpose flour",
    "1 cup warm water",
    "1 tablespoon olive oil",
    "2 garlic cloves, minced",
    "1 large onion, chopped",
    "1/2 teaspoon black pepper",
    "salt to taste",
]

INSTRUCTION_LINES = [
    "Preheat the oven to 400 degrees.",
    "Mix the flour and water in a large bowl.",
    "Saute the onion and garlic with olive oil in a pan.",
    "Season the onion with salt and pepper.",
    "Bake in the preheated oven for 30 minutes.",
    "Serve the bread garnished with parsley.",
]


def main() -> None:
    print("Training the pipeline on a simulated corpus...")
    corpus = RecipeDB.generate(25, 60, seed=31)
    modeler = RecipeModeler(RecipeModelerConfig(seed=31))
    modeler.fit(corpus)

    structured = modeler.model_text(
        recipe_id="garlic-flatbread",
        title="Garlic Flatbread",
        ingredient_lines=INGREDIENT_LINES,
        instruction_lines=INSTRUCTION_LINES,
    )

    print("\n=== Source (English, structured) ===")
    for record in structured.ingredients:
        print(f"  {record.phrase!r} -> {record.attributes}")

    for language in ("es", "fr"):
        translator = RecipeTranslator(language)
        translated = translator.translate(structured)
        print(f"\n=== Target language: {language} (lexicon coverage {translated.coverage:.0%}) ===")
        print(translated.as_text())


if __name__ == "__main__":
    main()
