"""Knowledge-graph queries and novel recipe generation (Section IV extensions).

The paper points to knowledge graphs, food pairing and novel recipe
generation as applications of its structured representation.  This example:

1. structures a simulated corpus with the full pipeline,
2. builds the recipe knowledge graph and answers pairing/technique queries,
3. fits the temporal event-chain model and shows typical early/late processes,
4. generates a novel recipe around a seed ingredient and scores its
   plausibility.

Run with::

    python examples/knowledge_graph_and_generation.py
"""

from __future__ import annotations

from repro.applications.generation import NovelRecipeGenerator
from repro.applications.knowledge_graph import RecipeKnowledgeGraph
from repro.core.event_chain import EventChainModel
from repro.core.pipeline import RecipeModeler, RecipeModelerConfig
from repro.data.recipedb import RecipeDB


def main() -> None:
    print("Training the pipeline and structuring the corpus...")
    corpus = RecipeDB.generate(30, 70, seed=17)
    modeler = RecipeModeler(RecipeModelerConfig(seed=17))
    modeler.fit(corpus)
    structured = [modeler.model_recipe(recipe) for recipe in corpus.recipes[:60]]

    # ------------------------------------------------------ knowledge graph
    graph = RecipeKnowledgeGraph.from_recipes(structured)
    print("\n=== Knowledge graph ===")
    print("summary:", graph.summary())
    top_ingredient, top_count = graph.common_ingredients(top_k=1)[0]
    print(f"most used ingredient: {top_ingredient!r} ({top_count} recipes)")
    print(f"pairs well with: {graph.ingredient_pairings(top_ingredient, top_k=5)}")
    print(f"techniques applied to it: {graph.processes_applied_to(top_ingredient, top_k=5)}")
    print(f"utensils used for 'bake': {graph.utensils_for_process('bake', top_k=3)}")

    # ------------------------------------------------------ temporal chains
    chains = EventChainModel().fit(structured)
    print("\n=== Temporal event chains ===")
    print("typically early processes:", chains.early_processes(5))
    print("typically late processes: ", chains.late_processes(5))
    natural = ["preheat", "mix", "bake", "serve"]
    shuffled = list(reversed(natural))
    print(
        f"plausibility of {natural}: {chains.plausibility(natural):.4f}  vs  "
        f"reversed {shuffled}: {chains.plausibility(shuffled):.4f}"
    )

    # ----------------------------------------------------- novel generation
    generator = NovelRecipeGenerator(graph, chains)
    generated = generator.generate(seed_ingredient=top_ingredient, n_ingredients=6, seed=4)
    print("\n=== Generated novel recipe ===")
    print(generated.as_text())
    print(f"\nprocess-chain plausibility: {generated.plausibility:.4f}")


if __name__ == "__main__":
    main()
