"""Recipe similarity search over structured recipes (Section IV).

The paper uses its structured representation to find similar recipes in
RecipeDB.  This example structures a corpus, picks a query recipe and ranks
the rest by a weighted combination of ingredient, process and utensil
overlap, printing the component scores for the top matches.

Run with::

    python examples/recipe_similarity.py
"""

from __future__ import annotations

from repro.applications.similarity import RecipeSimilarity
from repro.core.pipeline import RecipeModeler, RecipeModelerConfig
from repro.data.recipedb import RecipeDB


def main() -> None:
    print("Training the pipeline and structuring the corpus...")
    corpus = RecipeDB.generate(30, 60, seed=23)
    modeler = RecipeModeler(RecipeModelerConfig(seed=23))
    modeler.fit(corpus)

    structured = [modeler.model_recipe(recipe) for recipe in corpus.recipes[:40]]
    query = structured[0]
    candidates = structured[1:]

    similarity = RecipeSimilarity(ingredient_weight=0.6, process_weight=0.3, utensil_weight=0.1)
    matches = similarity.most_similar(query, candidates, top_k=5)

    print(f"\nQuery recipe: {query.title!r}")
    print(f"  ingredients: {', '.join(query.ingredient_names[:8])}")
    print(f"  processes:   {', '.join(query.processes[:10])}")

    print("\nTop matches:")
    for candidate, score in matches:
        breakdown = similarity.breakdown(query, candidate)
        print(
            f"  {score:.3f}  {candidate.title[:42]:44s} "
            f"(ingredients {breakdown.ingredient_similarity:.2f}, "
            f"processes {breakdown.process_similarity:.2f}, "
            f"utensils {breakdown.utensil_similarity:.2f})"
        )

    least_like = min(candidates, key=lambda candidate: similarity.similarity(query, candidate))
    print(
        f"\nLeast similar recipe: {least_like.title!r} "
        f"(score {similarity.similarity(query, least_like):.3f})"
    )


if __name__ == "__main__":
    main()
